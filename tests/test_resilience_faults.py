"""Tests for fault plans and fault-aware simulation."""

import numpy as np
import pytest

from repro import obs
from repro.cluster.simulator import Schedule, simulate
from repro.resilience.faults import (
    ExpertFailure,
    FaultPlan,
    LinkDegradation,
    OpFailure,
    StragglerWindow,
)


def single_op_schedule(work=1.0, kind="compute", stream="compute",
                       gpu=0):
    s = Schedule()
    s.new_op(work=work, gpu=gpu, stream=stream, kind=kind, label="op")
    return s


class TestFaultPlanModel:
    def test_empty_plan(self):
        assert FaultPlan().empty()
        assert not FaultPlan(stragglers=[
            StragglerWindow(gpu=0, start=0.0, end=1.0, factor=0.5)
        ]).empty()

    def test_rate_scale_composes(self):
        plan = FaultPlan(
            stragglers=[StragglerWindow(gpu=0, start=0.0, end=1.0,
                                        factor=0.5)],
            link_degradations=[LinkDegradation(start=0.0, end=1.0,
                                               factor=0.5)])
        # Compute ops only see the straggler; comm ops see both.
        assert plan.rate_scale(0, "compute", 0.5) == pytest.approx(0.5)
        assert plan.rate_scale(0, "comm", 0.5) == pytest.approx(0.25)
        assert plan.rate_scale(1, "compute", 0.5) == pytest.approx(1.0)
        assert plan.rate_scale(0, "compute", 2.0) == pytest.approx(1.0)

    def test_link_degradation_gpu_scoped(self):
        d = LinkDegradation(start=0.0, end=1.0, factor=0.5, gpu=2)
        assert d.applies(2, "comm", 0.5)
        assert not d.applies(1, "comm", 0.5)
        assert not d.applies(2, "compute", 0.5)

    def test_boundaries_sorted_unique(self):
        plan = FaultPlan(
            stragglers=[StragglerWindow(gpu=0, start=0.3, end=0.9,
                                        factor=0.5)],
            link_degradations=[LinkDegradation(start=0.3, end=0.6,
                                               factor=0.5)],
            op_failures=[OpFailure(time=0.1, gpu=0)])
        assert plan.boundaries() == [0.1, 0.3, 0.6, 0.9]

    def test_random_plan_deterministic(self):
        a = FaultPlan.random(7, num_gpus=4)
        b = FaultPlan.random(7, num_gpus=4)
        c = FaultPlan.random(8, num_gpus=4)
        assert a.stragglers == b.stragglers
        assert a.link_degradations == b.link_degradations
        assert a.op_failures == b.op_failures
        assert (a.stragglers != c.stragglers
                or a.op_failures != c.op_failures)

    def test_random_expert_failures_deterministic(self):
        kwargs = dict(num_gpus=4, num_expert_failures=3,
                      num_experts=8, num_layers=2, max_step=20)
        a = FaultPlan.random(7, **kwargs)
        b = FaultPlan.random(7, **kwargs)
        c = FaultPlan.random(8, **kwargs)
        assert a.expert_failures == b.expert_failures
        assert a.expert_failures != c.expert_failures

    def test_random_expert_failures_well_formed(self):
        plan = FaultPlan.random(3, num_expert_failures=5,
                                num_experts=8, num_layers=2,
                                max_step=10)
        assert len(plan.expert_failures) == 5
        # Distinct victims: no layer can lose the same expert twice,
        # and some expert always survives.
        victims = [f.expert for f in plan.expert_failures]
        assert len(set(victims)) == 5
        for f in plan.expert_failures:
            assert isinstance(f, ExpertFailure)
            assert 0 <= f.step < 10
            assert 0 <= f.layer < 2
            assert 0 <= f.expert < 8
        ordering = [(f.step, f.layer, f.expert)
                    for f in plan.expert_failures]
        assert ordering == sorted(ordering)
        assert "5 expert failure(s)" in plan.describe()

    def test_expert_draws_do_not_disturb_sim_streams(self):
        """Asking for expert failures must not change the simulator-
        side draws for the same seed (expert draws come last)."""
        base = FaultPlan.random(7, num_gpus=4)
        extended = FaultPlan.random(7, num_gpus=4,
                                    num_expert_failures=2)
        assert base.stragglers == extended.stragglers
        assert base.link_degradations == extended.link_degradations
        assert base.op_failures == extended.op_failures
        assert base.expert_failures == []
        assert len(extended.expert_failures) == 2

    def test_random_expert_failures_validation(self):
        with pytest.raises(ValueError, match="survivor"):
            FaultPlan.random(0, num_expert_failures=8, num_experts=8)
        with pytest.raises(ValueError):
            FaultPlan.random(0, num_expert_failures=-1)
        with pytest.raises(ValueError):
            FaultPlan.random(0, num_expert_failures=1, num_experts=4,
                             num_layers=0)
        with pytest.raises(ValueError):
            FaultPlan.random(0, num_expert_failures=1, num_experts=4,
                             max_step=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerWindow(gpu=0, start=1.0, end=0.5, factor=0.5)
        with pytest.raises(ValueError):
            StragglerWindow(gpu=0, start=0.0, end=1.0, factor=0.0)
        with pytest.raises(ValueError):
            LinkDegradation(start=-1.0, end=1.0, factor=0.5)
        with pytest.raises(ValueError):
            OpFailure(time=-0.5, gpu=0)
        with pytest.raises(ValueError):
            OpFailure(time=0.5, gpu=0, timeout=-1.0)
        with pytest.raises(ValueError):
            FaultPlan.random(0, num_gpus=0)


class TestStragglerInjection:
    def test_full_window_scales_runtime(self):
        plan = FaultPlan(stragglers=[
            StragglerWindow(gpu=0, start=0.0, end=10.0, factor=0.5)])
        result = simulate(single_op_schedule(1.0), faults=plan)
        assert result.makespan == pytest.approx(2.0)

    def test_partial_window_piecewise(self):
        # Rate 0.5 over [0, 0.5): 0.25 work done; remaining 0.75 at
        # full rate -> finish at 1.25.
        plan = FaultPlan(stragglers=[
            StragglerWindow(gpu=0, start=0.0, end=0.5, factor=0.5)])
        result = simulate(single_op_schedule(1.0), faults=plan)
        assert result.makespan == pytest.approx(1.25)

    def test_other_gpu_unaffected(self):
        plan = FaultPlan(stragglers=[
            StragglerWindow(gpu=1, start=0.0, end=10.0, factor=0.25)])
        result = simulate(single_op_schedule(1.0, gpu=0), faults=plan)
        assert result.makespan == pytest.approx(1.0)

    def test_straggler_stretches_barrier(self):
        # Two-GPU schedule joined by a barrier: the straggler on one
        # GPU delays the whole iteration.
        plan = FaultPlan(stragglers=[
            StragglerWindow(gpu=1, start=0.0, end=10.0, factor=0.5)])
        s = Schedule()
        a = s.new_op(work=1.0, gpu=0, kind="compute", label="a")
        b = s.new_op(work=1.0, gpu=1, kind="compute", label="b")
        s.new_op(work=0.0, gpu=0, kind="host", deps=(a, b),
                 label="barrier")
        assert simulate(s, faults=plan).makespan == pytest.approx(2.0)


class TestLinkDegradation:
    def test_slows_comm_only(self):
        plan = FaultPlan(link_degradations=[
            LinkDegradation(start=0.0, end=10.0, factor=0.5)])
        comm = simulate(single_op_schedule(1.0, kind="comm",
                                           stream="comm"), faults=plan)
        compute = simulate(single_op_schedule(1.0), faults=plan)
        assert comm.makespan == pytest.approx(2.0)
        assert compute.makespan == pytest.approx(1.0)

    def test_applies_to_memcpy_comm(self):
        plan = FaultPlan(link_degradations=[
            LinkDegradation(start=0.0, end=10.0, factor=0.5)])
        result = simulate(single_op_schedule(1.0, kind="comm_memcpy",
                                             stream="comm"), faults=plan)
        assert result.makespan == pytest.approx(2.0)


class TestOpFailure:
    def test_retry_recharges_cost(self):
        # Fails at t=0.5 with 0.2 timeout: progress lost, full work
        # plus timeout re-charged -> finishes at 0.5 + 1.2.
        plan = FaultPlan(op_failures=[
            OpFailure(time=0.5, gpu=0, timeout=0.2)])
        result = simulate(single_op_schedule(1.0), faults=plan)
        assert result.makespan == pytest.approx(1.7)
        assert result.faults_injected == 1
        assert result.faults_recovered == 1
        op = next(iter(result.retries))
        assert result.retries[op] == 1
        # The span covers the whole attempt sequence.
        assert result.span(op) == (pytest.approx(0.0),
                                   pytest.approx(1.7))

    def test_stream_scoped_failure(self):
        plan = FaultPlan(op_failures=[
            OpFailure(time=0.5, gpu=0, stream="comm", timeout=0.0)])
        s = Schedule()
        s.new_op(work=1.0, gpu=0, stream="compute", kind="compute",
                 label="comp")
        s.new_op(work=1.0, gpu=0, stream="comm", kind="host",
                 label="comm")
        result = simulate(s, faults=plan)
        comp = next(op for op in s.ops if op.label == "comp")
        comm = next(op for op in s.ops if op.label == "comm")
        assert result.span(comp)[1] == pytest.approx(1.0)
        assert result.span(comm)[1] == pytest.approx(1.5)

    def test_idle_failure_counted_not_recovered(self):
        plan = FaultPlan(op_failures=[
            OpFailure(time=0.5, gpu=3, timeout=0.2)])
        result = simulate(single_op_schedule(1.0, gpu=0), faults=plan)
        assert result.makespan == pytest.approx(1.0)
        assert result.faults_injected == 1
        assert result.faults_recovered == 0

    def test_double_failure_double_retry(self):
        plan = FaultPlan(op_failures=[
            OpFailure(time=0.5, gpu=0, timeout=0.0),
            OpFailure(time=1.0, gpu=0, timeout=0.0)])
        result = simulate(single_op_schedule(1.0), faults=plan)
        # Restarts at 0.5 and again at 1.0 -> finishes at 2.0.
        assert result.makespan == pytest.approx(2.0)
        op = next(iter(result.retries))
        assert result.retries[op] == 2
        assert result.faults_recovered == 1  # one op, recovered once


class TestFaultObservability:
    def test_events_and_counters_emitted(self):
        ob = obs.enable()
        try:
            plan = FaultPlan(op_failures=[
                OpFailure(time=0.5, gpu=0, timeout=0.2)])
            simulate(single_op_schedule(1.0), faults=plan)
            counters = ob.registry.snapshot()["counters"]
            assert counters["fault.injected"] == 1
            assert counters["fault.recovered"] == 1
            assert counters["sim.faults_injected"] == 1
            names = [e.name for e in ob.recorder.events
                     if e.cat == "fault"]
            assert names == ["injected", "recovered"]
            injected = next(e for e in ob.recorder.events
                            if e.name == "injected")
            assert injected.ts == pytest.approx(0.5)
            assert injected.args["victims"] == ["op"]
        finally:
            obs.disable()

    def test_empty_plan_equals_fault_free(self):
        s = Schedule()
        rng = np.random.default_rng(0)
        prev = None
        for i in range(10):
            prev = s.new_op(work=float(rng.uniform(0.1, 1.0)),
                            stream="compute", kind="compute",
                            deps=(prev,) if prev else (),
                            label=f"op{i}")
        base = simulate(s)
        with_empty = simulate(s, faults=FaultPlan())
        assert with_empty.makespan == pytest.approx(base.makespan)
        assert with_empty.faults_injected == 0
