"""Smoke tests for the accuracy-experiment protocols (SMOKE scale)."""

import pytest

from repro.train.experiments import (
    SMOKE,
    ExperimentScale,
    bpr_sweep,
    dense_vs_sparse,
    expert_count_sweep,
    finetune_frozen_vs_tuned,
    router_comparison,
    topk_capacity_ablation,
    train_dense,
    train_moe,
)


class TestProtocols:
    def test_dense_vs_sparse_runs(self):
        dense, moe = dense_vs_sparse(SMOKE)
        assert 0 <= dense.eval_accuracy <= 1
        assert 0 <= moe.eval_accuracy <= 1
        assert moe.params > dense.params  # extra experts

    def test_train_moe_infer_capacity_override(self):
        full = train_moe(SMOKE, capacity_factor=1.25)
        tight = train_moe(SMOKE, capacity_factor=1.25,
                          infer_capacity_factor=0.1)
        assert tight.eval_accuracy <= full.eval_accuracy + 0.1

    def test_expert_sweep_shapes(self):
        results = expert_count_sweep(SMOKE, expert_counts=(4, 8))
        assert [r.name for r in results] == ["moe-E4-k1", "moe-E8-k1"]
        assert results[1].params > results[0].params

    def test_bpr_sweep_structure(self):
        curves = bpr_sweep(SMOKE, infer_factors=(0.25, 1.0))
        assert set(curves) == {"w/ BPR", "w/o BPR"}
        for points in curves.values():
            assert [f for f, _ in points] == [0.25, 1.0]

    def test_router_comparison(self):
        results = router_comparison(SMOKE)
        assert set(results) == {"linear", "cosine"}

    def test_finetune_protocol(self):
        results = finetune_frozen_vs_tuned(SMOKE, finetune_samples=256,
                                           finetune_steps=15)
        assert set(results) == {"tuned", "fixed", "dense"}

    def test_topk_ablation_grid(self):
        rows = topk_capacity_ablation(SMOKE)
        assert len(rows) == 8
        assert {(r["k"], r["train_f"], r["infer_f"]) for r in rows} == {
            (1, 1.0, 1.25), (1, 1.0, 1.0), (1, 1.0, 0.625),
            (1, 1.0, 0.5), (2, 1.0, 1.25), (2, 1.0, 1.0),
            (2, 1.0, 0.625), (2, 0.625, 0.625)}

    def test_capacity_trace_recorded(self):
        result = train_dense(SMOKE)
        assert result.history is not None
        moe = train_moe(SMOKE)
        assert len(moe.history.capacity_traces[0]) == SMOKE.steps

    def test_scale_is_frozen_dataclass(self):
        with pytest.raises(Exception):
            SMOKE.steps = 3

    def test_custom_scale(self):
        tiny = ExperimentScale(train_samples=256, test_samples=128,
                               steps=5, batch_size=64, num_clusters=4)
        result = train_moe(tiny, num_experts=4)
        assert result.history is not None
