"""Shape tests for the collective latency models (Figures 6, 20, 21)."""

import pytest

from repro.cluster.topology import ndv4_topology
from repro.collectives.schedule import (
    A2AAlgorithm,
    Impl,
    Protocol,
    a2a_time,
    all_gather_time,
    all_reduce_time,
    best_a2a_algorithm,
    linear_a2a_time,
    naive_local_agg_a2a_time,
    reduce_scatter_time,
    twodh_a2a_time,
)
from repro.core.units import MIB


class TestLinearA2ATime:
    def test_zero_bytes_free(self):
        assert linear_a2a_time(ndv4_topology(64), 0) == 0.0

    def test_single_gpu_free(self):
        assert linear_a2a_time(ndv4_topology(1), 1 * MIB) == 0.0

    def test_overhead_dominates_at_scale(self):
        # Fixed total size, growing world: per-chunk bytes shrink but
        # the message count grows, so latency grows (Figure 6b).
        t64 = linear_a2a_time(ndv4_topology(64), 1 * MIB)
        t2048 = linear_a2a_time(ndv4_topology(2048), 1 * MIB)
        assert t2048 > 10 * t64

    def test_monotone_in_bytes(self):
        topo = ndv4_topology(128)
        sizes = [1 * MIB, 32 * MIB, 256 * MIB]
        times = [linear_a2a_time(topo, s) for s in sizes]
        assert times == sorted(times)

    def test_intra_node_only_uses_nvlink(self):
        t = linear_a2a_time(ndv4_topology(8), 64 * MIB)
        # 8 GPUs on NVLink: a 64 MiB exchange takes well under 1 ms.
        assert t < 1e-3

    def test_rail_optimization_penalty(self):
        topo_rail = ndv4_topology(256)
        from dataclasses import replace
        topo_flat = replace(topo_rail, rail_optimized=False)
        assert linear_a2a_time(topo_rail, 1 * MIB) > \
            linear_a2a_time(topo_flat, 1 * MIB)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            linear_a2a_time(ndv4_topology(8), -1)


class TestNaiveLocalAgg:
    def test_section_34_growth(self):
        # Paper: the intra phase takes ~600us at n=8 and grows to ~5ms
        # at n=2048 for S=128 MiB (the n/m non-contiguous rounds).
        small = naive_local_agg_a2a_time(ndv4_topology(8), 128 * MIB)
        large = naive_local_agg_a2a_time(ndv4_topology(2048), 128 * MIB)
        assert large > 3 * small

    def test_slower_than_2dh_at_scale(self):
        topo = ndv4_topology(1024)
        assert naive_local_agg_a2a_time(topo, 32 * MIB) > \
            twodh_a2a_time(topo, 32 * MIB)


class Test2DHTime:
    def test_figure20_small_message_crossover(self):
        # 1 MiB: 2DH wins from small scale and the gap explodes.
        for n in (64, 256, 2048):
            topo = ndv4_topology(n)
            assert twodh_a2a_time(topo, 1 * MIB) < \
                linear_a2a_time(topo, 1 * MIB), f"n={n}"

    def test_figure20_large_message_small_scale_linear_wins(self):
        # 256 MiB at 64 GPUs: the extra copies make 2DH slower.
        topo = ndv4_topology(64)
        assert twodh_a2a_time(topo, 256 * MIB) > \
            linear_a2a_time(topo, 256 * MIB)

    def test_figure20_large_message_large_scale_2dh_wins(self):
        topo = ndv4_topology(2048)
        assert twodh_a2a_time(topo, 256 * MIB) < \
            linear_a2a_time(topo, 256 * MIB)

    def test_paper_speedup_band_at_2048(self):
        # "outperforms the previous state-of-the-art up to 20.7x over
        # 2,048 GPUs" (small messages).
        topo = ndv4_topology(2048)
        ratio = (linear_a2a_time(topo, 1 * MIB)
                 / twodh_a2a_time(topo, 1 * MIB))
        assert 5 < ratio < 40

    def test_scales_beyond_nccl(self):
        # 4,096 GPUs still works and stays sane (exa-scale claim).
        t = twodh_a2a_time(ndv4_topology(4096), 1 * MIB)
        assert 0 < t < 0.1

    def test_latency_scales_with_nodes_not_world(self):
        # Doubling world at fixed node count via bigger nodes barely
        # changes phase 4; growing node count does.
        t_8gpu_nodes = twodh_a2a_time(ndv4_topology(2048, 8), 1 * MIB)
        t_16gpu_nodes = twodh_a2a_time(ndv4_topology(2048, 16), 1 * MIB)
        assert t_16gpu_nodes < t_8gpu_nodes

    def test_msccl_removes_barriers(self):
        topo = ndv4_topology(512)
        nccl = twodh_a2a_time(topo, 1 * MIB, impl=Impl.NCCL)
        msccl = twodh_a2a_time(topo, 1 * MIB, impl=Impl.MSCCL)
        assert msccl < nccl

    def test_ll128_helps_small_sizes(self):
        topo = ndv4_topology(512)
        simple = twodh_a2a_time(topo, 1 * MIB, protocol=Protocol.SIMPLE,
                                impl=Impl.MSCCL)
        ll128 = twodh_a2a_time(topo, 1 * MIB, protocol=Protocol.LL128,
                               impl=Impl.MSCCL)
        assert ll128 < simple

    def test_simple_protocol_wins_large_sizes(self):
        topo = ndv4_topology(64)
        simple = twodh_a2a_time(topo, 256 * MIB, protocol=Protocol.SIMPLE,
                                impl=Impl.MSCCL)
        ll128 = twodh_a2a_time(topo, 256 * MIB, protocol=Protocol.LL128,
                               impl=Impl.MSCCL)
        assert simple < ll128


class TestDispatcher:
    def test_a2a_time_dispatch(self):
        topo = ndv4_topology(128)
        assert a2a_time(topo, 1 * MIB, A2AAlgorithm.LINEAR) == \
            linear_a2a_time(topo, 1 * MIB)
        assert a2a_time(topo, 1 * MIB, A2AAlgorithm.TWO_DH) == \
            twodh_a2a_time(topo, 1 * MIB)
        assert a2a_time(topo, 1 * MIB, A2AAlgorithm.NAIVE_LOCAL_AGG) == \
            naive_local_agg_a2a_time(topo, 1 * MIB)

    def test_best_algorithm_adapts(self):
        # Dynamic adaptation is required (Section 5.1.1 conclusion):
        # linear for big messages at small scale, 2DH otherwise.
        small_scale = best_a2a_algorithm(ndv4_topology(64), 256 * MIB)[0]
        large_scale = best_a2a_algorithm(ndv4_topology(2048), 1 * MIB)[0]
        assert small_scale is A2AAlgorithm.LINEAR
        assert large_scale is A2AAlgorithm.TWO_DH


class TestRingTimes:
    def test_all_gather_grows_with_group(self):
        topo = ndv4_topology(64)
        assert all_gather_time(topo, 1 * MIB, 16) > \
            all_gather_time(topo, 1 * MIB, 2)

    def test_group_of_one_free(self):
        topo = ndv4_topology(8)
        assert all_gather_time(topo, 1 * MIB, 1) == 0.0
        assert reduce_scatter_time(topo, 1 * MIB, 1) == 0.0

    def test_all_reduce_is_rs_plus_ag(self):
        topo = ndv4_topology(64)
        total = 8 * MIB
        g = 8
        expected = (reduce_scatter_time(topo, total, g)
                    + all_gather_time(topo, total / g, g))
        assert all_reduce_time(topo, total, g) == pytest.approx(expected)

    def test_intra_group_uses_nvlink(self):
        topo = ndv4_topology(64)
        # A group of 8 fits in one node -> NVLink-fast.
        assert all_gather_time(topo, 16 * MIB, 8) < \
            all_gather_time(topo, 16 * MIB, 16)


class Test3DHTime:
    def test_beats_2dh_at_extreme_scale(self):
        from repro.collectives.schedule import threedh_a2a_time
        topo = ndv4_topology(8192)
        assert threedh_a2a_time(topo, 8 * MIB, nodes_per_group=16) < \
            twodh_a2a_time(topo, 8 * MIB)

    def test_extra_copies_cost_at_small_scale(self):
        from repro.collectives.schedule import threedh_a2a_time
        topo = ndv4_topology(64)
        assert threedh_a2a_time(topo, 256 * MIB, nodes_per_group=4) > \
            twodh_a2a_time(topo, 256 * MIB)

    def test_zero_and_single(self):
        from repro.collectives.schedule import threedh_a2a_time
        assert threedh_a2a_time(ndv4_topology(1), 1 * MIB) == 0.0
        assert threedh_a2a_time(ndv4_topology(64), 0) == 0.0

    def test_rejects_bad_group(self):
        from repro.collectives.schedule import threedh_a2a_time
        with pytest.raises(ValueError):
            threedh_a2a_time(ndv4_topology(64), 1 * MIB,
                             nodes_per_group=0)
