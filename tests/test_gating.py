"""Tests for gating functions, routing, and BPR."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.moe.gating import (
    RoutingCriteria,
    compute_locations,
    compute_locations_reference,
    cosine_gate_logits,
    linear_gate_logits,
    load_balance_loss,
    softmax,
    top_k_routing,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(16, 8)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        p = softmax(np.array([[1e4, 1e4 - 1.0]]))
        assert np.isfinite(p).all()

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(4, 5))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))


class TestGateLogits:
    def test_linear_shape(self, rng):
        x = rng.normal(size=(32, 16))
        w = rng.normal(size=(16, 8))
        assert linear_gate_logits(x, w).shape == (32, 8)

    def test_linear_rejects_mismatch(self, rng):
        with pytest.raises(ValueError):
            linear_gate_logits(rng.normal(size=(4, 3)),
                               rng.normal(size=(5, 8)))

    def test_cosine_bounded_by_temperature(self, rng):
        x = rng.normal(size=(64, 16))
        proj = rng.normal(size=(16, 8))
        embed = rng.normal(size=(4, 8))
        logits = cosine_gate_logits(x, proj, embed, temperature=0.5)
        assert np.abs(logits).max() <= 1.0 / 0.5 + 1e-9

    def test_cosine_temperature_floor(self, rng):
        x = rng.normal(size=(8, 4))
        proj = rng.normal(size=(4, 4))
        embed = rng.normal(size=(3, 4))
        tiny = cosine_gate_logits(x, proj, embed, temperature=1e-6)
        floor = cosine_gate_logits(x, proj, embed, temperature=0.01)
        np.testing.assert_allclose(tiny, floor)

    def test_cosine_scale_invariant_in_input(self, rng):
        x = rng.normal(size=(8, 4))
        proj = rng.normal(size=(4, 4))
        embed = rng.normal(size=(3, 4))
        a = cosine_gate_logits(x, proj, embed)
        b = cosine_gate_logits(1000.0 * x, proj, embed)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_cosine_rejects_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            cosine_gate_logits(rng.normal(size=(8, 4)),
                               rng.normal(size=(4, 6)),
                               rng.normal(size=(3, 5)))


class TestComputeLocations:
    def test_sequential_numbering(self):
        idxs = np.array([[0, 0, 1, 0]])
        locs = compute_locations(idxs, num_experts=2)
        np.testing.assert_array_equal(locs, [[0, 1, 0, 2]])

    def test_slots_share_expert_queues(self):
        # Slot 0 fills first; slot 1 continues the same queues.
        idxs = np.array([[0, 1], [1, 0]])
        locs = compute_locations(idxs, num_experts=2)
        np.testing.assert_array_equal(locs, [[0, 0], [1, 1]])

    def test_priority_reorders(self):
        idxs = np.array([[0, 0, 0]])
        priority = np.array([0.1, 0.9, 0.5])
        locs = compute_locations(idxs, 1, priority=priority)
        # Highest priority token gets position 0.
        np.testing.assert_array_equal(locs, [[2, 0, 1]])

    def test_locations_unique_per_expert(self):
        rng = np.random.default_rng(1)
        idxs = rng.integers(0, 4, size=(2, 50))
        locs = compute_locations(idxs, 4)
        for e in range(4):
            cells = locs[idxs == e]
            assert len(np.unique(cells)) == len(cells)

    def test_rejects_bad_priority_shape(self):
        with pytest.raises(ValueError):
            compute_locations(np.zeros((1, 3), dtype=int), 2,
                              priority=np.zeros(4))

    @given(t=st.integers(1, 64), e=st.integers(1, 8), k=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_property_queue_contiguity(self, t, e, k):
        rng = np.random.default_rng(t * 100 + e * 10 + k)
        idxs = rng.integers(0, e, size=(k, t))
        locs = compute_locations(idxs, e)
        for expert in range(e):
            cells = np.sort(locs[idxs == expert])
            np.testing.assert_array_equal(cells, np.arange(len(cells)))


class TestTopKRouting:
    def test_selects_highest_probability(self, rng):
        probs = softmax(rng.normal(size=(32, 8)))
        crit = top_k_routing(probs, 2, capacity=32)
        assert crit.idxs.shape == (2, 32)
        np.testing.assert_array_equal(crit.idxs[0],
                                      probs.argmax(axis=1))

    def test_slots_are_distinct_experts(self, rng):
        probs = softmax(rng.normal(size=(64, 8)))
        crit = top_k_routing(probs, 3, capacity=64)
        assert (crit.idxs[0] != crit.idxs[1]).all()
        assert (crit.idxs[1] != crit.idxs[2]).all()

    def test_normalized_gates_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(16, 4)))
        crit = top_k_routing(probs, 2, capacity=16, normalize_gate=True)
        np.testing.assert_allclose(crit.gates.sum(axis=0), 1.0)

    def test_unnormalized_keeps_raw_probs(self, rng):
        probs = softmax(rng.normal(size=(16, 4)))
        crit = top_k_routing(probs, 1, capacity=16, normalize_gate=False)
        np.testing.assert_allclose(crit.gates[0], probs.max(axis=1))

    def test_top_any_k_equals_e(self, rng):
        probs = softmax(rng.normal(size=(8, 4)))
        crit = top_k_routing(probs, 4, capacity=8, normalize_gate=True)
        assert crit.top_k == 4
        assert set(np.unique(crit.idxs)) == {0, 1, 2, 3}

    def test_capacity_drops_overflow(self):
        # All tokens prefer expert 0; capacity 2 keeps only two.
        probs = np.tile([[0.9, 0.1]], (10, 1))
        crit = top_k_routing(probs, 1, capacity=2)
        assert crit.valid[0].sum() == 2
        assert crit.dropped_fraction() == pytest.approx(0.8)

    def test_dropped_slots_have_zero_gate(self):
        probs = np.tile([[0.9, 0.1]], (10, 1))
        crit = top_k_routing(probs, 1, capacity=2)
        assert (crit.gates[~crit.valid] == 0).all()

    def test_bpr_keeps_confident_tokens(self):
        # Three tokens all route to expert 0 with rising confidence;
        # capacity 1.  BPR keeps the most confident, FIFO keeps first.
        probs = np.array([[0.55, 0.45], [0.75, 0.25], [0.95, 0.05]])
        fifo = top_k_routing(probs, 1, capacity=1, batch_prioritized=False)
        bpr = top_k_routing(probs, 1, capacity=1, batch_prioritized=True)
        assert fifo.valid[0].tolist() == [True, False, False]
        assert bpr.valid[0].tolist() == [False, False, True]

    def test_max_needed_capacity(self, rng):
        probs = softmax(rng.normal(size=(32, 4)))
        crit = top_k_routing(probs, 2, capacity=64)
        counts = np.bincount(crit.idxs.ravel(), minlength=4)
        assert crit.max_needed_capacity() == counts.max()

    def test_rejects_bad_k(self, rng):
        probs = softmax(rng.normal(size=(4, 2)))
        with pytest.raises(ValueError):
            top_k_routing(probs, 3, capacity=4)

    def test_rejects_bad_capacity(self, rng):
        probs = softmax(rng.normal(size=(4, 2)))
        with pytest.raises(ValueError):
            top_k_routing(probs, 1, capacity=0)


class TestRoutingCriteria:
    def test_valid_mask(self):
        crit = RoutingCriteria(
            idxs=np.array([[0, 1]]), locations=np.array([[0, 5]]),
            gates=np.array([[0.5, 0.5]]), capacity=3, num_experts=2)
        np.testing.assert_array_equal(crit.valid, [[True, False]])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RoutingCriteria(idxs=np.zeros(3, dtype=int),
                            locations=np.zeros(3, dtype=int),
                            gates=np.zeros(3), capacity=1, num_experts=1)


class TestLoadBalanceLoss:
    def test_uniform_routing_gives_one(self):
        t, e = 64, 8
        probs = np.full((t, e), 1.0 / e)
        idxs = np.tile(np.arange(e), t // e)[None, :]
        assert load_balance_loss(probs, idxs) == pytest.approx(1.0)

    def test_collapsed_routing_costs_more(self):
        t, e = 64, 8
        probs = np.zeros((t, e))
        probs[:, 0] = 1.0
        idxs = np.zeros((1, t), dtype=int)
        assert load_balance_loss(probs, idxs) == pytest.approx(e)

    def test_imbalance_increases_loss(self):
        # When the gate concentrates probability on an expert AND the
        # counts follow, the loss exceeds the balanced value of 1.
        t, e = 256, 4
        skewed_probs = np.full((t, e), 0.1 / (e - 1))
        skewed_probs[:, 0] = 0.9
        skewed = np.zeros((1, t), dtype=int)
        balanced = np.tile(np.arange(e), t // e)[None, :]
        assert load_balance_loss(skewed_probs, skewed) > \
            load_balance_loss(skewed_probs, balanced) > 0


class TestRoutingCriteriaShapeRegression:
    def test_gates_shape_mismatch_rejected(self):
        # Regression: the old chained comparison
        # `idxs.shape != locations.shape != gates.shape` evaluated to
        # False whenever idxs and locations agreed, silently accepting
        # a mis-shaped gates array.
        with pytest.raises(ValueError):
            RoutingCriteria(idxs=np.zeros((2, 4), dtype=int),
                            locations=np.zeros((2, 4), dtype=int),
                            gates=np.zeros((2, 5)),
                            capacity=1, num_experts=2)

    def test_locations_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RoutingCriteria(idxs=np.zeros((2, 4), dtype=int),
                            locations=np.zeros((2, 3), dtype=int),
                            gates=np.zeros((2, 4)),
                            capacity=1, num_experts=2)

    def test_matching_shapes_accepted(self):
        crit = RoutingCriteria(idxs=np.zeros((2, 4), dtype=int),
                               locations=np.zeros((2, 4), dtype=int),
                               gates=np.zeros((2, 4)),
                               capacity=1, num_experts=2)
        assert crit.top_k == 2


class TestEmptyBatch:
    def test_load_balance_loss_zero_tokens(self):
        with np.errstate(all="raise"):
            assert load_balance_loss(np.zeros((0, 4)),
                                     np.zeros((2, 0), dtype=int)) == 0.0

    def test_routing_criteria_empty_diagnostics(self):
        crit = RoutingCriteria(idxs=np.zeros((2, 0), dtype=int),
                               locations=np.zeros((2, 0), dtype=int),
                               gates=np.zeros((2, 0)),
                               capacity=4, num_experts=4)
        with np.errstate(all="raise"):
            assert crit.dropped_fraction() == 0.0
            assert crit.max_needed_capacity() == 1

    def test_top_k_routing_empty_batch(self):
        crit = top_k_routing(np.zeros((0, 4)), top_k=2, capacity=4)
        assert crit.idxs.shape == (2, 0)
        assert crit.locations.shape == (2, 0)
        assert crit.dropped_fraction() == 0.0


class TestComputeLocationsRewrite:
    """The sort/cumcount rewrite must match the dense reference exactly."""

    @given(seed=st.integers(0, 500), t=st.integers(0, 48),
           e=st.integers(1, 10), k=st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_batch_order(self, seed, t, e, k):
        rng = np.random.default_rng(seed)
        idxs = rng.integers(0, e, size=(k, t))
        np.testing.assert_array_equal(
            compute_locations(idxs, e),
            compute_locations_reference(idxs, e))

    @given(seed=st.integers(0, 500), t=st.integers(0, 48),
           e=st.integers(1, 10), k=st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_bpr_priority(self, seed, t, e, k):
        rng = np.random.default_rng(seed)
        idxs = rng.integers(0, e, size=(k, t))
        priority = rng.normal(size=t)
        np.testing.assert_array_equal(
            compute_locations(idxs, e, priority=priority),
            compute_locations_reference(idxs, e, priority=priority))

    def test_matches_reference_with_priority_ties(self):
        # Stable tie-breaking: equal priorities must fall back to
        # batch order, matching the reference's stable argsort.
        rng = np.random.default_rng(7)
        idxs = rng.integers(0, 3, size=(2, 20))
        priority = np.repeat([0.5, 0.1], 10)
        np.testing.assert_array_equal(
            compute_locations(idxs, 3, priority=priority),
            compute_locations_reference(idxs, 3, priority=priority))

    def test_matches_real_routing_case(self):
        rng = np.random.default_rng(3)
        probs = softmax(rng.normal(size=(128, 8)))
        for bpr in (False, True):
            crit = top_k_routing(probs, 2, capacity=8,
                                 batch_prioritized=bpr)
            priority = probs.max(axis=1) if bpr else None
            np.testing.assert_array_equal(
                crit.locations,
                compute_locations_reference(crit.idxs, 8,
                                            priority=priority))

    def test_dtype_and_empty(self):
        locs = compute_locations(np.zeros((2, 0), dtype=int), 4)
        assert locs.shape == (2, 0)
        assert locs.dtype == np.int64

    def test_faster_than_reference_at_paper_scale(self):
        # Perf regression guard at the ISSUE's scale (T=4096, E=64,
        # k=2), timed through the repro.obs registry so the speedup is
        # recorded the same way the CLI reports it.
        from repro.obs import Observer
        rng = np.random.default_rng(0)
        idxs = rng.integers(0, 64, size=(2, 4096))
        ob = Observer()
        for _ in range(5):
            with ob.span("reference", "bench"):
                compute_locations_reference(idxs, 64)
            with ob.span("fast", "bench"):
                compute_locations(idxs, 64)
        ref = ob.registry.histogram("bench.reference")
        fast = ob.registry.histogram("bench.fast")
        # Best-of-5 comparison; the rewrite is ~20x faster in practice,
        # so a plain "faster" assertion has a wide safety margin.
        assert fast.min < ref.min
