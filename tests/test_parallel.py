"""Tests for P1/P2 strategies, placement, and the inline router."""

import pytest

from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.parallel.placement import (
    ExpertPlacement,
    build_placement,
    round_robin_placement,
)
from repro.parallel.router import InlineParallelismRouter
from repro.parallel.strategy import (
    Parallelism,
    p1_communication_bytes,
    p2_communication_bytes,
    replication_factor,
    strategy_cost,
)


def cfg_with(f=1.0, experts=2, world=8, tokens=2048, m=2048, v=8192,
             k=2):
    return MoEConfig(world_size=world, experts_per_gpu=experts / world,
                     model_dim=m, hidden_dim=v, tokens_per_gpu=tokens,
                     top_k=min(k, experts), capacity_factor=f)


class TestReplicationFactor:
    def test_more_experts_than_gpus(self):
        cfg = MoEConfig(world_size=4, experts_per_gpu=2)
        assert replication_factor(cfg) == 1

    def test_fewer_experts_than_gpus(self):
        assert replication_factor(cfg_with(experts=2, world=8)) == 4

    def test_matches_expert_shards(self):
        cfg = MoEConfig(world_size=6, experts_per_gpu=1 / 3)
        assert replication_factor(cfg) == cfg.expert_shards == 3


class TestCommunicationBytes:
    def test_p1_has_parameter_traffic(self):
        cfg = cfg_with()
        a2a, params = p1_communication_bytes(cfg)
        assert a2a == cfg.dispatch_bytes_per_gpu
        assert params > 0

    def test_p1_no_param_traffic_when_r1(self):
        cfg = MoEConfig(world_size=4, experts_per_gpu=1)
        assert p1_communication_bytes(cfg)[1] == 0

    def test_p2_repeats_tokens(self):
        cfg = cfg_with()
        r = replication_factor(cfg)
        a2a, params = p2_communication_bytes(cfg)
        assert a2a == r * cfg.dispatch_bytes_per_gpu
        assert params == 0

    def test_paper_tradeoff_direction(self):
        # T_model grows with f (token volume); T_data's parameter term
        # does not.  So P2's relative cost rises with f.
        small_f = cfg_with(f=1)
        large_f = cfg_with(f=16)
        p1_small = sum(p1_communication_bytes(small_f))
        p2_small = sum(p2_communication_bytes(small_f))
        p1_large = sum(p1_communication_bytes(large_f))
        p2_large = sum(p2_communication_bytes(large_f))
        assert p2_small / p1_small < p2_large / p1_large


class TestStrategyCost:
    def test_ep_requires_r1(self):
        topo = ndv4_topology(8)
        with pytest.raises(ValueError):
            strategy_cost(cfg_with(), topo, Parallelism.EP)

    def test_cost_fields_positive(self):
        topo = ndv4_topology(8)
        cost = strategy_cost(cfg_with(), topo, Parallelism.P1_EP_DP)
        assert cost.comm_time > 0
        assert cost.compute_time > 0
        assert cost.total_time == cost.comm_time + cost.compute_time

    def test_equivalent_local_compute(self):
        # Paper: P1 and P2 have theoretically equivalent local
        # computation; allow the layout-efficiency wiggle.
        topo = ndv4_topology(8)
        cfg = cfg_with()
        c1 = strategy_cost(cfg, topo, Parallelism.P1_EP_DP).compute_time
        c2 = strategy_cost(cfg, topo, Parallelism.P2_EP_MP).compute_time
        assert 0.4 < c1 / c2 < 2.5

    def test_inference_cheaper_than_training(self):
        topo = ndv4_topology(8)
        cfg = cfg_with()
        train = strategy_cost(cfg, topo, Parallelism.P1_EP_DP,
                              training=True)
        infer = strategy_cost(cfg, topo, Parallelism.P1_EP_DP,
                              training=False)
        assert infer.total_time < train.total_time


class TestFigure3Preference:
    """P2 wins at small f, P1 at large f (the preference flip)."""

    def test_crossover_exists(self):
        topo = ndv4_topology(8)
        choices = []
        for f in (1, 2, 4, 8, 16):
            router = InlineParallelismRouter(topo)
            choices.append(router.decide(cfg_with(f=f)).chosen)
        assert Parallelism.P2_EP_MP in choices
        assert Parallelism.P1_EP_DP in choices
        # P2 preferred at the smallest f, P1 at the largest.
        assert choices[0] is Parallelism.P2_EP_MP
        assert choices[-1] is Parallelism.P1_EP_DP

    def test_table5b_hidden_size_prefers_p2(self):
        # Large hidden size V (big expert params) favours P2's
        # no-parameter-traffic design: f1,E2,S16K,V2K row.
        topo = ndv4_topology(8)
        router = InlineParallelismRouter(topo)
        big_tokens = router.decide(
            cfg_with(f=1, experts=2, tokens=16384, m=2048, v=2048))
        assert big_tokens.chosen is Parallelism.P1_EP_DP

    def test_table5b_big_hidden_prefers_p1_or_p2(self):
        # f1,E4,S1K,V8K row: adaptive picks P2 (params >> tokens).
        topo = ndv4_topology(8)
        router = InlineParallelismRouter(topo)
        decision = router.decide(
            cfg_with(f=1, experts=4, tokens=1024, m=2048, v=8192))
        assert decision.chosen is Parallelism.P2_EP_MP


class TestRouter:
    def test_ep_when_r1(self):
        topo = ndv4_topology(8)
        router = InlineParallelismRouter(topo)
        cfg = MoEConfig(world_size=8, experts_per_gpu=1)
        assert router.decide(cfg).chosen is Parallelism.EP

    def test_history_and_switch_count(self):
        topo = ndv4_topology(8)
        router = InlineParallelismRouter(topo)
        for f in (1, 16, 1, 16):
            router.decide_for(cfg_with(), f)
        assert len(router.history) == 4
        assert router.switch_count() >= 2

    def test_improvement_over_static(self):
        topo = ndv4_topology(8)
        router = InlineParallelismRouter(topo)
        decision = router.decide(cfg_with(f=16))
        # The adaptive choice never loses to either static choice.
        for strategy in decision.costs:
            assert decision.improvement_over(strategy) >= 0

    def test_decide_for_overrides_k(self):
        topo = ndv4_topology(8)
        router = InlineParallelismRouter(topo)
        decision = router.decide_for(cfg_with(), 2.0, top_k=1)
        assert decision.chosen in (Parallelism.P1_EP_DP,
                                   Parallelism.P2_EP_MP)


class TestPlacement:
    def test_figure17a_positive(self):
        # #GPU=2, count_per_node=2: GPU0 {E0,E1}, GPU1 {E2,E3}.
        p = build_placement(2, 2)
        assert p.num_global_experts == 4
        assert p.gpu_to_experts[0] == ((0, 0), (1, 0))
        assert p.gpu_to_experts[1] == ((2, 0), (3, 0))

    def test_figure17b_negative(self):
        # #GPU=8, count_per_node=-2: expert i sharded on GPUs 2i, 2i+1.
        p = build_placement(8, -2)
        assert p.num_global_experts == 4
        assert p.shards_per_expert == 2
        assert p.gpu_to_experts[0] == ((0, 0),)
        assert p.gpu_to_experts[1] == ((0, 1),)
        assert p.gpus_of_expert(3) == [6, 7]

    def test_experts_per_gpu_fraction(self):
        assert build_placement(8, -4).experts_per_gpu == 0.25

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            build_placement(4, 0)

    def test_rejects_indivisible_shards(self):
        with pytest.raises(ValueError):
            build_placement(6, -4)

    def test_gpus_of_expert_bounds(self):
        p = build_placement(2, 2)
        with pytest.raises(ValueError):
            p.gpus_of_expert(4)


class TestExpertIndex:
    """The precomputed expert→GPUs inverse index on the frozen
    placement (replaces the per-call linear scan)."""

    def test_positive_count_per_node(self):
        p = build_placement(4, 2)
        assert p.expert_to_gpus == ((0,), (0,), (1,), (1,),
                                    (2,), (2,), (3,), (3,))
        for e in range(p.num_global_experts):
            # The index agrees with a fresh linear scan.
            scanned = [g for g, hosted in enumerate(p.gpu_to_experts)
                       if any(e == he for he, _ in hosted)]
            assert p.gpus_of_expert(e) == scanned

    def test_negative_count_per_node(self):
        p = build_placement(8, -2)
        assert p.expert_to_gpus == ((0, 1), (2, 3), (4, 5), (6, 7))
        for e in range(p.num_global_experts):
            scanned = [g for g, hosted in enumerate(p.gpu_to_experts)
                       if any(e == he for he, _ in hosted)]
            assert p.gpus_of_expert(e) == scanned

    def test_deep_sharding(self):
        p = build_placement(8, -4)
        assert p.expert_to_gpus == ((0, 1, 2, 3), (4, 5, 6, 7))

    def test_index_is_rank_sorted(self):
        # Hosting order in gpu_to_experts must not leak into the index.
        p = ExpertPlacement(
            num_gpus=2, num_global_experts=2, experts_per_gpu=1.0,
            shards_per_expert=2,
            gpu_to_experts=(((1, 0), (0, 1)), ((0, 0), (1, 1))))
        assert p.expert_to_gpus == ((0, 1), (0, 1))

    def test_out_of_range_hosted_expert_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            ExpertPlacement(
                num_gpus=1, num_global_experts=2, experts_per_gpu=2.0,
                shards_per_expert=1,
                gpu_to_experts=(((0, 0), (5, 0)),))

    def test_disagreeing_explicit_index_rejected(self):
        with pytest.raises(ValueError, match="expert_to_gpus"):
            ExpertPlacement(
                num_gpus=2, num_global_experts=2, experts_per_gpu=1.0,
                shards_per_expert=1,
                gpu_to_experts=(((0, 0),), ((1, 0),)),
                expert_to_gpus=((1,), (0,)))


class TestRoundRobinPlacement:
    def test_strided_layout(self):
        p = round_robin_placement(4, 8)
        # Expert e lives on GPU e % 4.
        for e in range(8):
            assert p.gpus_of_expert(e) == [e % 4]
        assert p.gpu_to_experts[0] == ((0, 0), (4, 0))
        assert p.experts_per_gpu == 2.0
        assert p.shards_per_expert == 1

    def test_one_expert_per_gpu(self):
        p = round_robin_placement(4, 4)
        assert p.gpu_to_experts == (((0, 0),), ((1, 0),),
                                    ((2, 0),), ((3, 0),))

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            round_robin_placement(4, 6)

    def test_rejects_bad_world(self):
        with pytest.raises(ValueError):
            round_robin_placement(0, 4)
