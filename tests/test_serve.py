"""repro.serve — arrivals, batcher, ledger conservation, engine.

The load-bearing contracts:

* arrival traces are deterministic functions of (spec, seed);
* the batch former closes on fill / deadline / drain correctly;
* **ledger conservation is exact**: per request, the six spans sum to
  the end-to-end latency, and per batch and stage the token-weighted
  attributed shares sum to the stage wall — for every arrival process
  and seed, under both the float32 and float64 substrates (the ledger
  is integer arithmetic, so dtype must not matter);
* the engine's modeled column is bit-identical across repeated runs
  and reacts to the brownout window;
* the forced-SLO-miss hook flips the verdict.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.substrate import set_default_dtype
from repro.scenarios.engine import SLOCheck
from repro.serve import (
    ArrivalSpec,
    Batch,
    BatchFormer,
    Request,
    attribute_shares,
    generate_arrivals,
    get_workload,
    serve_workload,
    stage_sum,
    workload_names,
)
from repro.serve.arrivals import NS
from repro.serve.engine import price_stages
from repro.serve.ledger import EXEC_STAGES, STAGES, build_batch_ledger
from repro.serve.workloads import WORKLOADS


@pytest.fixture(autouse=True)
def _float32_default():
    prev = set_default_dtype(np.float32)
    yield
    set_default_dtype(prev)


def _spec(kind: str, horizon_s: float = 1.0) -> ArrivalSpec:
    if kind == "poisson":
        return ArrivalSpec(kind="poisson", horizon_s=horizon_s,
                           rate=200.0)
    if kind == "bursty":
        return ArrivalSpec(kind="bursty", horizon_s=horizon_s,
                           rate=100.0, burst_rate=600.0,
                           on_s=0.2, off_s=0.3)
    return ArrivalSpec(kind="diurnal", horizon_s=horizon_s, rate=60.0,
                       peak_rate=500.0, period_s=0.5)


class TestArrivals:
    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    def test_trace_is_deterministic(self, kind):
        a = generate_arrivals(_spec(kind), seed=3)
        b = generate_arrivals(_spec(kind), seed=3)
        assert a == b
        assert a != generate_arrivals(_spec(kind), seed=4)

    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    def test_trace_is_sorted_and_in_horizon(self, kind):
        spec = _spec(kind)
        trace = generate_arrivals(spec, seed=0)
        assert trace, "horizon should produce requests"
        arrivals = [r.arrival_ns for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(0 <= t <= spec.horizon_s * NS for t in arrivals)
        assert all(spec.min_tokens <= r.tokens <= spec.max_tokens
                   for r in trace)
        assert [r.request_id for r in trace] == list(range(len(trace)))

    def test_rate_roughly_matches(self):
        spec = ArrivalSpec(kind="poisson", horizon_s=20.0, rate=100.0)
        trace = generate_arrivals(spec, seed=0)
        assert 0.8 * 2000 < len(trace) < 1.2 * 2000

    def test_scaled_shrinks_horizon_only(self):
        spec = _spec("poisson", horizon_s=2.0)
        fast = spec.scaled(0.25)
        assert fast.horizon_s == pytest.approx(0.5)
        assert fast.rate == spec.rate
        with pytest.raises(ValueError):
            spec.scaled(0.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ArrivalSpec(kind="weird", horizon_s=1.0, rate=1.0)
        with pytest.raises(ValueError):
            ArrivalSpec(kind="bursty", horizon_s=1.0, rate=10.0,
                        burst_rate=5.0)
        with pytest.raises(ValueError):
            ArrivalSpec(kind="diurnal", horizon_s=1.0, rate=10.0,
                        peak_rate=5.0, period_s=1.0)
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_ns=0, tokens=0, seed=0)


def _req(rid: int, at_ns: int, tokens: int = 8) -> Request:
    return Request(request_id=rid, arrival_ns=at_ns, tokens=tokens,
                   seed=rid)


class TestBatchFormer:
    def test_fill_closes_at_last_arrival(self):
        former = BatchFormer(max_batch_size=2, max_wait_ns=1000)
        reqs = [_req(0, 0), _req(1, 100), _req(2, 200)]
        batch = former.next_batch(reqs, 0, free_ns=0, batch_id=0)
        assert [r.request_id for r in batch.requests] == [0, 1]
        assert batch.close_ns == 100  # fill: last member's arrival

    def test_deadline_close(self):
        former = BatchFormer(max_batch_size=8, max_wait_ns=1000)
        reqs = [_req(0, 0), _req(1, 400), _req(2, 5000)]
        batch = former.next_batch(reqs, 0, free_ns=0, batch_id=0)
        assert [r.request_id for r in batch.requests] == [0, 1]
        assert batch.close_ns == 1000  # deadline: eligible + max_wait

    def test_drain_closes_immediately(self):
        former = BatchFormer(max_batch_size=8, max_wait_ns=10_000)
        reqs = [_req(0, 0), _req(1, 400)]
        batch = former.next_batch(reqs, 0, free_ns=0, batch_id=0)
        assert len(batch.requests) == 2
        assert batch.close_ns == 400  # drain: no future arrivals

    def test_wait_clock_starts_when_server_frees(self):
        former = BatchFormer(max_batch_size=8, max_wait_ns=1000)
        reqs = [_req(0, 0), _req(1, 2500), _req(2, 9999999)]
        batch = former.next_batch(reqs, 0, free_ns=2000, batch_id=0)
        # First member queued until free_ns=2000; deadline 3000 admits
        # request 1 but not the far-future request 2.
        assert [r.request_id for r in batch.requests] == [0, 1]
        assert batch.close_ns == 3000

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchFormer(max_batch_size=0, max_wait_ns=0)
        with pytest.raises(ValueError):
            BatchFormer(max_batch_size=1, max_wait_ns=-1)
        with pytest.raises(ValueError):
            Batch(batch_id=0, requests=(), free_ns=0, close_ns=0)
        with pytest.raises(ValueError):
            Batch(batch_id=0, requests=(_req(0, 100),), free_ns=50,
                  close_ns=20)


class TestLedgerConservation:
    def test_attribute_shares_sums_exactly(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            n = int(rng.integers(1, 9))
            tokens = [int(rng.integers(1, 33)) for _ in range(n)]
            wall = int(rng.integers(0, 10**9))
            shares = attribute_shares(wall, tokens)
            assert sum(shares) == wall
            assert all(s >= 0 for s in shares)

    def test_attribute_shares_proportional_and_deterministic(self):
        shares = attribute_shares(100, [1, 1, 2])
        assert shares == [25, 25, 50]
        # Remainder goes to the largest fractional part; FIFO on ties.
        assert attribute_shares(10, [1, 1, 1]) == [4, 3, 3]
        with pytest.raises(ValueError):
            attribute_shares(-1, [1])
        with pytest.raises(ValueError):
            attribute_shares(10, [])
        with pytest.raises(ValueError):
            attribute_shares(10, [0, 1])

    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_spans_sum_to_e2e_every_process_and_seed(self, kind, seed):
        """The tentpole invariant, directly over the ledger layer."""
        trace = generate_arrivals(_spec(kind, horizon_s=0.5), seed)
        former = BatchFormer(max_batch_size=8, max_wait_ns=10**7)
        rng = np.random.default_rng(seed)
        free_ns, start, batch_id = 0, 0, 0
        while start < len(trace):
            batch = former.next_batch(trace, start, free_ns, batch_id)
            walls = {s: int(rng.integers(0, 10**8))
                     for s in EXEC_STAGES}
            model_walls = {s: int(rng.integers(0, 10**8))
                          for s in EXEC_STAGES}
            ledger = build_batch_ledger(batch, walls, model_walls,
                                        queue_depth=0)
            for r in ledger.requests:
                # Exact: integer nanoseconds, no float rounding.
                assert stage_sum(r.spans) == r.e2e_ns
                assert stage_sum(r.model_spans) == r.model_e2e_ns
                assert r.spans["queue"] >= 0
                assert r.spans["batch_wait"] >= 0
                assert (r.spans["queue"] + r.spans["batch_wait"]
                        == batch.close_ns - r.arrival_ns)
            for s in EXEC_STAGES:
                assert sum(r.shares[s] for r in ledger.requests) \
                    == ledger.walls[s]
                assert sum(r.model_shares[s]
                           for r in ledger.requests) \
                    == ledger.model_walls[s]
            free_ns = ledger.done_ns
            start += ledger.size
            batch_id += 1
        assert batch_id > 1

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_engine_conservation_under_both_dtypes(self, dtype):
        """End-to-end through the real engine: conservation must hold
        bit-exactly whichever substrate dtype serves the batches."""
        prev = set_default_dtype(dtype)
        try:
            res = serve_workload(get_workload("bursty_spike"),
                                 fast=True, seed=1)
        finally:
            set_default_dtype(prev)
        assert res.requests
        for r in res.requests:
            assert stage_sum(r.spans) == r.e2e_ns
            assert stage_sum(r.model_spans) == r.model_e2e_ns
        for b in res.batches:
            for s in EXEC_STAGES:
                assert sum(r.shares[s] for r in b.requests) \
                    == b.walls[s]
                assert sum(r.model_shares[s] for r in b.requests) \
                    == b.model_walls[s]

    def test_stage_names(self):
        assert STAGES == ("queue", "batch_wait", "gate", "dispatch",
                          "expert", "combine")
        assert EXEC_STAGES == ("gate", "dispatch", "expert", "combine")


class TestPricing:
    def test_prices_are_positive_ints_and_scale_with_tokens(self):
        wl = get_workload("poisson_steady")
        small = price_stages(wl, tokens=8)
        big = price_stages(wl, tokens=256)
        for s in EXEC_STAGES:
            assert isinstance(small[s], int) and small[s] > 0
            assert big[s] > small[s]

    def test_brownout_derates_only_comm_stages(self):
        wl = get_workload("poisson_steady")
        nominal = price_stages(wl, tokens=64)
        browned = price_stages(wl, tokens=64, comm_derate=0.25)
        assert browned["gate"] == nominal["gate"]
        assert browned["expert"] == nominal["expert"]
        assert browned["dispatch"] > nominal["dispatch"]
        assert browned["combine"] > nominal["combine"]
        with pytest.raises(ValueError):
            price_stages(wl, tokens=64, comm_derate=0.0)
        with pytest.raises(ValueError):
            price_stages(wl, tokens=0)


class TestEngine:
    def test_model_column_deterministic_across_runs(self):
        wl = get_workload("poisson_steady")
        a = serve_workload(wl, fast=True, seed=0)
        b = serve_workload(wl, fast=True, seed=0)
        ma = [(m.name, m.value) for m in a.metrics
              if m.kind == "model"]
        mb = [(m.name, m.value) for m in b.metrics
              if m.kind == "model"]
        assert ma == mb
        assert [r.model_e2e_ns for r in a.requests] \
            == [r.model_e2e_ns for r in b.requests]
        assert a.expert_load == b.expert_load

    def test_emits_percentiles_goodput_and_checks(self):
        res = serve_workload(get_workload("poisson_steady"),
                             fast=True, seed=0)
        names = {m.name for m in res.metrics}
        assert {"model_p50_ms", "model_p95_ms", "model_p99_ms",
                "goodput_rps", "slo_pass", "requests",
                "measured_p99_ms", "wall_seconds"} <= names
        p50 = res.metric("model_p50_ms").value
        p99 = res.metric("model_p99_ms").value
        assert 0 < p50 <= p99
        assert res.metric("goodput_rps").value > 0
        kinds = {c.name.split(".")[-1] for c in res.checks}
        assert {"model_p99_ms", "goodput_rps"} <= kinds
        # Modeled metrics gate with tolerance 0 — the determinism
        # contract of BENCH_serving.json.
        assert res.metric("model_p99_ms").tolerance == 0.0
        assert res.metric("model_p99_ms").kind == "model"
        assert res.metric("measured_p99_ms").kind == "measured"

    def test_forced_slo_miss(self):
        res = serve_workload(get_workload("poisson_steady"),
                             fast=True, seed=0, p99_slo_ms=1e-6)
        assert not res.passed
        assert res.metric("slo_pass").value == 0.0
        miss = [c for c in res.checks
                if c.name.endswith("model_p99_ms")][0]
        assert not miss.passed and miss.bound == 1e-6

    def test_brownout_inflates_latency_and_emits_fault_events(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        wl = get_workload("brownout_surge")
        res = serve_workload(wl, fast=True, seed=0)
        calm = serve_workload(
            get_workload("poisson_steady"), fast=True, seed=0)
        assert res.metric("model_p99_ms").value \
            > calm.metric("model_p99_ms").value
        from repro.obs.runs import RunStore
        store = RunStore(tmp_path)
        run_id = store.run_ids()[0]
        kinds = {e.get("kind") for e in store.events(run_id)}
        assert {"serve", "serve_batch", "serve_request",
                "serving_load", "slo_check", "fault",
                "recovery"} <= kinds
        manifest = store.manifest(run_id)
        assert manifest.summary["serve.workload"] == "brownout_surge"
        assert manifest.summary["serve.requests"] == len(res.requests)

    def test_expert_load_statistic_shape(self):
        wl = get_workload("poisson_steady")
        res = serve_workload(wl, fast=True, seed=0)
        assert len(res.expert_load) == wl.num_layers
        assert all(len(row) == wl.num_experts
                   for row in res.expert_load)
        total_routed = sum(sum(row) for row in res.expert_load)
        assert total_routed > 0

    def test_slo_check_semantics(self):
        assert SLOCheck("x", 1.0, 2.0, "<=").passed
        assert not SLOCheck("x", 3.0, 2.0, "<=").passed
        assert SLOCheck("x", 3.0, 2.0, ">=").passed


class TestWorkloadRegistry:
    def test_names_and_lookup(self):
        names = workload_names()
        assert {"poisson_steady", "bursty_spike", "diurnal_cycle",
                "brownout_surge"} == set(names)
        assert names == sorted(names)
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_fast_keeps_brownout_window_in_horizon(self):
        wl = WORKLOADS["brownout_surge"].resolved(fast=True)
        assert wl.brownout is not None
        assert wl.brownout.step < wl.arrival.horizon_s

    def test_resolved_overrides(self):
        wl = WORKLOADS["poisson_steady"]
        fast = wl.resolved(fast=True, seed=9)
        assert fast.seed == 9
        assert fast.arrival.horizon_s \
            == pytest.approx(wl.arrival.horizon_s * wl.fast_factor)
        assert wl.resolved() is wl
