"""Tests for the online health detectors (repro.obs.health)."""

import math
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.obs.health import (
    EwmaDetector,
    HealthAlert,
    HealthConfig,
    HealthMonitor,
)
from repro.obs.runs import RunStore, recording_run


@dataclass
class FakeStats:
    """Duck-typed stand-in for repro.moe.metrics.RoutingStats."""

    num_tokens: int = 64
    top_k: int = 2
    routing_entropy: float = 0.9
    load_gini: float = 0.1
    dropped_fraction: float = 0.0
    needed_capacity_factor: float = 1.0
    expert_load: tuple = field(
        default_factory=lambda: (16, 16, 16, 16, 16, 16, 16, 16))


def healthy(**overrides) -> FakeStats:
    return FakeStats(**overrides)


class TestEwmaDetector:
    def test_no_score_during_warmup(self):
        det = EwmaDetector(alpha=0.2, warmup=3)
        assert det.update(1.0) == 0.0
        assert det.update(100.0) == 0.0   # count=1 < warmup
        assert det.update(100.0) == 0.0   # count=2 < warmup

    def test_scores_against_pre_update_moments(self):
        det = EwmaDetector(alpha=0.5, warmup=1)
        det.update(0.0)
        det.update(2.0)                   # mean=1.0, var=0.5*(0+0.5*4)=1
        z = det.update(3.0)
        assert z == pytest.approx((3.0 - 1.0) / math.sqrt(1.0))

    def test_zero_variance_yields_zero(self):
        det = EwmaDetector(alpha=0.3, warmup=1)
        for _ in range(10):
            assert det.update(5.0) == 0.0

    def test_deterministic(self):
        values = list(np.random.default_rng(0).normal(size=50))
        a = EwmaDetector(alpha=0.15, warmup=8)
        b = EwmaDetector(alpha=0.15, warmup=8)
        assert [a.update(v) for v in values] == \
               [b.update(v) for v in values]

    def test_spike_scores_high(self):
        det = EwmaDetector(alpha=0.15, warmup=4)
        for v in [1.0, 1.1, 0.9, 1.0, 1.05, 0.95]:
            det.update(v)
        assert det.update(10.0) > 6.0

    def test_no_nan_under_raise(self):
        det = EwmaDetector(alpha=0.15, warmup=2)
        with np.errstate(all="raise"):
            for v in [0.0, 0.0, 0.0, 1e-300, 0.0]:
                assert math.isfinite(det.update(v))


class TestHealthConfig:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="ewma_alpha"):
            HealthConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            HealthConfig(ewma_alpha=1.5)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="dead_window"):
            HealthConfig(dead_window=0)


class TestEntropyDetector:
    def test_floor_breach_is_critical_and_latched(self):
        mon = HealthMonitor(HealthConfig(warmup_steps=2))
        for step in range(4):
            mon.observe_routing(step, 0, healthy())
        first = mon.observe_routing(4, 0, healthy(routing_entropy=0.2))
        assert [a.kind for a in first] == ["entropy_drift"]
        assert first[0].severity == "critical"
        assert first[0].step == 4 and first[0].layer == 0
        # persists -> no second alert while still bad
        again = mon.observe_routing(5, 0, healthy(routing_entropy=0.2))
        assert [a.kind for a in again] == []

    def test_rearms_after_recovery(self):
        mon = HealthMonitor(HealthConfig(warmup_steps=2))
        mon.observe_routing(0, 0, healthy())
        mon.observe_routing(1, 0, healthy(routing_entropy=0.2))
        mon.observe_routing(2, 0, healthy())            # recovers
        raised = mon.observe_routing(3, 0, healthy(routing_entropy=0.2))
        assert [a.kind for a in raised] == ["entropy_drift"]
        assert sum(a.kind == "entropy_drift"
                   for a in mon.alerts) == 2

    def test_z_drift_warn_without_floor_breach(self):
        mon = HealthMonitor(HealthConfig(warmup_steps=4, entropy_z=4.0))
        for step, e in enumerate([0.90, 0.91, 0.89, 0.90, 0.91, 0.90]):
            assert mon.observe_routing(step, 0, healthy(
                routing_entropy=e)) == []
        raised = mon.observe_routing(6, 0, healthy(routing_entropy=0.7))
        assert [a.kind for a in raised] == ["entropy_drift"]
        assert raised[0].severity == "warn"

    def test_layers_tracked_independently(self):
        mon = HealthMonitor(HealthConfig(warmup_steps=1))
        mon.observe_routing(0, 0, healthy(routing_entropy=0.2))
        raised = mon.observe_routing(0, 1, healthy(routing_entropy=0.2))
        assert [a.layer for a in mon.alerts] == [0, 1]
        assert raised[0].layer == 1


class TestImbalanceAndCapacity:
    def test_gini_ceiling(self):
        mon = HealthMonitor()
        raised = mon.observe_routing(0, 0, healthy(load_gini=0.95))
        kinds = [a.kind for a in raised]
        assert "imbalance_drift" in kinds
        alert = next(a for a in raised if a.kind == "imbalance_drift")
        assert alert.severity == "critical"

    def test_drop_rate_threshold(self):
        mon = HealthMonitor(HealthConfig(drop_rate_threshold=0.3))
        assert mon.observe_routing(0, 0, healthy(
            dropped_fraction=0.29)) == []
        raised = mon.observe_routing(1, 0, healthy(
            dropped_fraction=0.5))
        assert [a.kind for a in raised] == ["drop_rate"]
        assert raised[0].value == pytest.approx(0.5)

    def test_capacity_overflow(self):
        mon = HealthMonitor(HealthConfig(overflow_factor=3.0))
        raised = mon.observe_routing(0, 0, healthy(
            needed_capacity_factor=4.0))
        assert [a.kind for a in raised] == ["capacity_overflow"]

    def test_zero_token_step_skipped(self):
        mon = HealthMonitor()
        raised = mon.observe_routing(0, 0, healthy(
            num_tokens=0, routing_entropy=0.0, load_gini=1.0))
        assert raised == [] and mon.alerts == []


class TestDeadExpert:
    def starved(self, expert=3):
        # 64 tokens * k=2 / 8 experts = 16 share; floor = 1.6
        load = [18] * 8
        load[expert] = 0
        return healthy(expert_load=tuple(load))

    def test_fires_after_window_consecutive_steps(self):
        mon = HealthMonitor(HealthConfig(dead_window=4))
        fired_at = None
        for step in range(10):
            for a in mon.observe_routing(step, 0, self.starved()):
                if a.kind == "dead_expert":
                    fired_at = (a.step, a.expert)
        assert fired_at == (3, 3)          # step dead_window-1, once
        assert sum(a.kind == "dead_expert"
                   for a in mon.alerts) == 1

    def test_window_resets_on_recovery(self):
        mon = HealthMonitor(HealthConfig(dead_window=3))
        mon.observe_routing(0, 0, self.starved())
        mon.observe_routing(1, 0, self.starved())
        mon.observe_routing(2, 0, healthy())        # resets the count
        mon.observe_routing(3, 0, self.starved())
        mon.observe_routing(4, 0, self.starved())
        assert all(a.kind != "dead_expert" for a in mon.alerts)
        raised = mon.observe_routing(5, 0, self.starved())
        assert [a.kind for a in raised] == ["dead_expert"]

    def test_realerts_after_recovery(self):
        mon = HealthMonitor(HealthConfig(dead_window=2))
        for step in range(2):
            mon.observe_routing(step, 0, self.starved())
        mon.observe_routing(2, 0, healthy())
        for step in (3, 4):
            mon.observe_routing(step, 0, self.starved())
        assert sum(a.kind == "dead_expert" for a in mon.alerts) == 2

    def test_single_expert_layer_skipped(self):
        mon = HealthMonitor(HealthConfig(dead_window=1))
        mon.observe_routing(0, 0, healthy(expert_load=(0,)))
        assert mon.alerts == []


class TestGradSpike:
    def test_spike_detected_once(self):
        mon = HealthMonitor(HealthConfig(warmup_steps=4, grad_z=6.0))
        for step in range(8):
            assert mon.observe_step(step, grad_norm=1.0 +
                                    0.01 * (step % 3)) == []
        raised = mon.observe_step(8, grad_norm=50.0)
        assert [a.kind for a in raised] == ["grad_spike"]
        # still elevated -> latched, no repeat
        assert mon.observe_step(9, grad_norm=60.0) == []

    def test_non_finite_grad_ignored(self):
        mon = HealthMonitor()
        assert mon.observe_step(0, grad_norm=float("nan")) == []
        assert mon.observe_step(1, grad_norm=float("inf")) == []
        assert mon.observe_step(2, grad_norm=None, loss=1.0) == []
        assert mon.alerts == []


class TestAlertPlumbing:
    def test_alert_json_round_trip(self):
        alert = HealthAlert(kind="dead_expert", step=7,
                            severity="critical", value=0.0,
                            threshold=1.6, layer=1, expert=3,
                            message="m")
        obj = alert.to_json_obj()
        assert obj["kind"] == "dead_expert" and obj["expert"] == 3
        assert "expert=3" in alert.describe()
        assert "[critical]" in alert.describe()

    def test_alerts_land_in_run_stream(self, tmp_path):
        with recording_run(root=tmp_path, run_id="r",
                           created_at=1.0):
            mon = HealthMonitor()
            mon.observe_routing(5, 0, healthy(load_gini=0.95))
        events = RunStore(tmp_path).events("r")
        alerts = [e for e in events if e["kind"] == "alert"]
        assert len(alerts) == 1
        assert alerts[0]["step"] == 5
        assert alerts[0]["data"]["kind"] == "imbalance_drift"

    def test_determinism_same_sequence_same_alerts(self):
        rng = np.random.default_rng(3)
        seq = []
        for step in range(30):
            e = 0.9 + 0.01 * rng.standard_normal()
            if step >= 20:
                e = 0.2
            seq.append(healthy(routing_entropy=e))
        runs = []
        for _ in range(2):
            mon = HealthMonitor(HealthConfig(warmup_steps=4))
            for step, stats in enumerate(seq):
                mon.observe_routing(step, 0, stats)
            runs.append([(a.kind, a.step) for a in mon.alerts])
        assert runs[0] == runs[1]
        assert ("entropy_drift", 20) in runs[0]
