"""Tests for token partitioning and pipeline schedules (Figure 14)."""

import numpy as np
import pytest

from repro.cluster.topology import ndv4_topology
from repro.collectives.schedule import A2AAlgorithm
from repro.core.config import MoEConfig
from repro.moe.gating import softmax, top_k_routing
from repro.moe.layer import ExpertParams, expert_ffn
from repro.pipeline.partition import (
    merge_partitions,
    partition_capacity,
    valid_degrees,
)
from repro.pipeline.schedule import (
    PipelineStrategy,
    SegmentSpec,
    all_strategies,
    build_segment_schedule,
    pipeline_segment_time,
    segment_time,
)


class TestPartition:
    def test_valid_degrees(self):
        assert valid_degrees(8) == (1, 2, 4, 8)
        assert valid_degrees(6) == (1, 2)
        assert valid_degrees(1) == (1,)

    def test_partition_shapes(self):
        x = np.arange(2 * 8 * 3, dtype=float).reshape(2, 8, 3)
        parts = partition_capacity(x, 4)
        assert len(parts) == 4
        assert parts[0].shape == (2, 2, 3)

    def test_merge_roundtrip(self):
        x = np.random.default_rng(0).normal(size=(4, 8, 5))
        for degree in (1, 2, 4, 8):
            np.testing.assert_array_equal(
                merge_partitions(partition_capacity(x, degree)), x)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            partition_capacity(np.zeros((2, 6, 3)), 4)

    def test_rejects_empty_merge(self):
        with pytest.raises(ValueError):
            merge_partitions([])

    def test_pipelined_expert_equals_unpipelined(self):
        # The functional core of Figure 14: chunked All-to-All + expert
        # + merge produces the same numbers as the monolithic path.
        rng = np.random.default_rng(1)
        e, cap, m, v = 4, 8, 6, 12
        experts = ExpertParams.init(e, m, v, rng)
        probs = softmax(rng.normal(size=(32, e)))
        crit = top_k_routing(probs, 2, capacity=cap)
        from repro.moe.encode import fast_encode
        dispatched = fast_encode(rng.normal(size=(32, m)), crit)

        whole = expert_ffn(dispatched, experts)
        chunked = merge_partitions([
            expert_ffn(part, experts)
            for part in partition_capacity(dispatched, 4)])
        np.testing.assert_allclose(whole, chunked, atol=1e-12)


class TestPipelineStrategy:
    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            PipelineStrategy(degree=3)

    def test_grid_size(self):
        assert len(all_strategies()) == 8

    def test_describe(self):
        s = PipelineStrategy(degree=4, algorithm=A2AAlgorithm.TWO_DH)
        assert s.describe() == "2dh/deg4"

    def test_strategies_hashable_and_distinct(self):
        assert len(set(all_strategies())) == 8


class TestSegmentSpec:
    def test_from_config(self):
        cfg = MoEConfig(world_size=8, experts_per_gpu=2, model_dim=64,
                        hidden_dim=128, tokens_per_gpu=256, top_k=2)
        spec = SegmentSpec.from_config(cfg)
        assert spec.a2a_bytes == cfg.dispatch_bytes_per_gpu
        assert spec.expert_rows == cfg.global_capacity
        assert spec.expert_batch == 2

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            SegmentSpec(a2a_bytes=-1, expert_batch=1, expert_rows=1,
                        model_dim=1, hidden_dim=1)
        with pytest.raises(ValueError):
            SegmentSpec(a2a_bytes=0, expert_batch=0, expert_rows=1,
                        model_dim=1, hidden_dim=1)


class TestSchedules:
    @pytest.fixture
    def cfg(self):
        return MoEConfig(world_size=64, experts_per_gpu=2,
                         model_dim=2048, hidden_dim=2048,
                         tokens_per_gpu=8192, top_k=2)

    def test_degree1_is_serial_sum(self, cfg):
        topo = ndv4_topology(64)
        from repro.cluster.gemm import expert_ffn_time
        from repro.collectives.schedule import a2a_time
        strategy = PipelineStrategy(degree=1)
        total = pipeline_segment_time(cfg, topo, strategy)
        a2a = a2a_time(topo, cfg.dispatch_bytes_per_gpu,
                       A2AAlgorithm.LINEAR)
        expert = expert_ffn_time(topo.gpu, 2, cfg.global_capacity,
                                 2048, 2048)
        assert total == pytest.approx(2 * a2a + expert, rel=1e-6)

    def test_op_count_matches_degree(self, cfg):
        topo = ndv4_topology(64)
        for degree in (1, 2, 4, 8):
            schedule = build_segment_schedule(
                SegmentSpec.from_config(cfg), topo,
                PipelineStrategy(degree=degree))
            # 3 ops per chunk + barrier.
            assert len(schedule.ops) == 3 * degree + 1

    def test_overlap_beats_serial_when_balanced(self, cfg):
        # When A2A and compute times are comparable, pipelining at
        # degree 2+ must beat degree 1 (Table 1's potential speedup).
        topo = ndv4_topology(64)
        t1 = pipeline_segment_time(
            cfg, topo, PipelineStrategy(2, A2AAlgorithm.TWO_DH))
        t0 = pipeline_segment_time(
            cfg, topo, PipelineStrategy(1, A2AAlgorithm.TWO_DH))
        assert t1 < t0

    def test_deep_pipelining_pays_overhead(self):
        # At large scale with the linear algorithm, every extra chunk
        # multiplies the per-message overhead: degree 8 loses.
        cfg = MoEConfig(world_size=2048, experts_per_gpu=2,
                        model_dim=2048, hidden_dim=2048,
                        tokens_per_gpu=16384, top_k=2)
        topo = ndv4_topology(2048)
        t1 = pipeline_segment_time(cfg, topo,
                                   PipelineStrategy(1, A2AAlgorithm.LINEAR))
        t8 = pipeline_segment_time(cfg, topo,
                                   PipelineStrategy(8, A2AAlgorithm.LINEAR))
        assert t8 > t1

    def test_figure5_optimum_varies_with_scale(self):
        # The jointly optimal (algorithm, degree) differs across
        # scales — the motivation for adaptive pipelining.
        best = set()
        for w in (16, 256, 2048):
            cfg = MoEConfig(world_size=w, experts_per_gpu=2,
                            model_dim=2048, hidden_dim=2048,
                            tokens_per_gpu=16384, top_k=2)
            topo = ndv4_topology(w)
            times = {s: pipeline_segment_time(cfg, topo, s)
                     for s in all_strategies()}
            best.add(min(times, key=times.__getitem__))
        assert len(best) >= 2

    def test_training_segment_slower(self, cfg):
        topo = ndv4_topology(64)
        s = PipelineStrategy(2, A2AAlgorithm.TWO_DH)
        assert segment_time(SegmentSpec.from_config(cfg), topo, s,
                            training=True) > \
            segment_time(SegmentSpec.from_config(cfg), topo, s,
                         training=False)
