"""Tests for the persistent run registry (repro.obs.runs)."""

import json

import numpy as np
import pytest

from repro.nn.models import MoEClassifier
from repro.obs.runs import (
    DEFAULT_RUNS_DIR,
    RunManifest,
    RunStore,
    RunWriter,
    env_runs_root,
    get_run,
    recording_run,
    runs_root,
    set_run,
)
from repro.train.data import ClusteredTokenTask
from repro.train.trainer import train_model


@pytest.fixture(autouse=True)
def _no_leaked_run():
    assert get_run() is None
    yield
    set_run(None)


def make_run(root, run_id, created_at, seed=0, summary=None,
             events=()):
    writer = RunWriter.create(root=root, run_id=run_id, seed=seed,
                              config={"id": run_id},
                              created_at=created_at)
    for kind, step, data in events:
        writer.emit(kind, step=step, data=data)
    writer.finalize(summary=summary or {})
    return writer


class TestRunWriter:
    def test_create_writes_manifest_and_events(self, tmp_path):
        writer = RunWriter.create(root=tmp_path, run_id="r1", seed=7,
                                  config={"a": 1}, created_at=100.0)
        assert (tmp_path / "r1" / "manifest.json").is_file()
        assert (tmp_path / "r1" / "events.jsonl").is_file()
        manifest = json.loads(
            (tmp_path / "r1" / "manifest.json").read_text())
        assert manifest["seed"] == 7
        assert manifest["status"] == "running"
        assert manifest["created_at"] == 100.0
        writer.close()

    def test_generated_id_collision_suffix(self, tmp_path):
        a = RunWriter.create(root=tmp_path, created_at=50.0,
                             config={"x": 1})
        b = RunWriter.create(root=tmp_path, created_at=50.0,
                             config={"x": 1})
        assert a.manifest.run_id != b.manifest.run_id
        assert b.manifest.run_id.startswith(a.manifest.run_id)
        a.close(), b.close()

    def test_emit_appends_sequenced_lines(self, tmp_path):
        writer = RunWriter.create(root=tmp_path, run_id="r1",
                                  created_at=1.0)
        writer.begin_step(3)
        writer.emit("routing", data={"layer": 0})
        writer.emit("step", step=4, data={"loss": 0.5})
        writer.close()
        lines = [json.loads(line) for line in
                 (tmp_path / "r1" / "events.jsonl")
                 .read_text().splitlines()]
        assert [e["seq"] for e in lines] == [0, 1]
        assert lines[0]["step"] == 3          # from begin_step
        assert lines[1]["step"] == 4          # explicit override
        assert all(e["schema"] == 1 for e in lines)

    def test_finalize_marks_complete_and_writes_metrics(self, tmp_path):
        writer = RunWriter.create(root=tmp_path, run_id="r1",
                                  created_at=1.0)
        writer.emit("step", step=0, data={})
        writer.finalize(registry_snapshot={"counters": {"n": 2.0}},
                        summary={"loss": 0.1})
        store = RunStore(tmp_path)
        assert store.manifest("r1").status == "complete"
        assert store.manifest("r1").summary == {"loss": 0.1}
        assert store.metrics("r1") == {"counters": {"n": 2.0}}

    def test_manifest_schema_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="schema"):
            RunManifest.from_json_obj({"schema": 99, "run_id": "x",
                                       "created_at": 0.0})

    def test_recording_run_installs_and_finalizes(self, tmp_path):
        with recording_run(root=tmp_path, run_id="ctx",
                           created_at=5.0) as run:
            assert get_run() is run
            run.emit("step", step=0, data={})
        assert get_run() is None
        assert RunStore(tmp_path).manifest("ctx").status == "complete"


class TestTornTail:
    """Readers must tolerate a torn final line — a writer killed (or
    racing) mid-``write`` leaves half a JSON record with no newline."""

    def _run_with_tail(self, tmp_path, tail):
        writer = RunWriter.create(root=tmp_path, run_id="r1",
                                  created_at=1.0)
        writer.emit("step", step=0, data={"loss": 2.0})
        writer.emit("step", step=1, data={"loss": 1.0})
        writer.close()
        path = tmp_path / "r1" / "events.jsonl"
        path.write_text(path.read_text() + tail)
        return path

    def test_store_skips_torn_final_line(self, tmp_path):
        self._run_with_tail(tmp_path,
                            '{"schema": 1, "seq": 2, "kind": "st')
        events = RunStore(tmp_path).events("r1")
        assert [e["seq"] for e in events] == [0, 1]

    def test_parse_events_text_skips_torn_tail_only(self):
        from repro.obs.runs import parse_events_text

        good = ('{"schema": 1, "seq": 0, "kind": "step"}\n'
                '{"schema": 1, "seq": 1, "kind": "step"}\n')
        assert len(parse_events_text(good + '{"seq": 2, "ki')) == 2
        # Mid-stream corruption is data loss, not a benign race —
        # it must still raise.
        with pytest.raises(json.JSONDecodeError):
            parse_events_text('!!corrupt!!\n' + good)

    def test_resume_recovers_past_torn_tail(self, tmp_path):
        self._run_with_tail(tmp_path, '{"seq": 2, "kind": "trunc')
        writer = RunWriter.resume(tmp_path / "r1")
        writer.emit("step", step=2, data={"loss": 0.5})
        writer.finalize(summary={})
        events = RunStore(tmp_path).events("r1")
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[-1]["step"] == 2


class TestResumeCompaction:
    def _seed_run(self, tmp_path):
        writer = RunWriter.create(root=tmp_path, run_id="r1",
                                  created_at=1.0)
        for step in range(6):
            writer.emit("step", step=step, data={"loss": float(step)})
        writer.emit("eval", step=-1, data={"accuracy": 0.5})
        writer.close()
        return tmp_path / "r1"

    def test_resume_drops_replayed_and_eval_events(self, tmp_path):
        directory = self._seed_run(tmp_path)
        writer = RunWriter.resume(directory, from_step=4)
        steps = [e["step"] for e in RunStore(tmp_path).events("r1")]
        assert steps == [0, 1, 2, 3]          # >=4 and -1 compacted
        writer.emit("step", step=4, data={})
        writer.close()
        events = RunStore(tmp_path).events("r1")
        assert [e["step"] for e in events] == [0, 1, 2, 3, 4]
        # seq keeps ascending across the compaction boundary
        assert events[-1]["seq"] == max(e["seq"] for e in events)

    def test_resume_without_from_step_keeps_everything(self, tmp_path):
        directory = self._seed_run(tmp_path)
        writer = RunWriter.resume(directory)
        writer.close()
        assert len(RunStore(tmp_path).events("r1")) == 7

    def test_resume_resets_status_to_running(self, tmp_path):
        directory = self._seed_run(tmp_path)
        store = RunStore(tmp_path)
        RunWriter.resume(directory, from_step=2).close()
        assert store.manifest("r1").status == "running"


class TestCheckpointRestoreResumesRun:
    """Satellite: restore mid-run -> event stream has every step
    exactly once."""

    def test_no_duplicate_or_missing_steps(self, tmp_path):
        task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                  num_classes=4, noise=0.4, seed=0)
        train, test = task.sample(256), task.sample(128)

        def model():
            return MoEClassifier(8, 16, 32, 4, num_blocks=2,
                                 num_experts=8,
                                 rng=np.random.default_rng(0), top_k=2)

        runs_dir = tmp_path / "runs"
        with recording_run(root=runs_dir, run_id="full",
                           created_at=1.0):
            train_model(model(), train, test, steps=10, batch_size=64,
                        checkpoint_every=4,
                        checkpoint_dir=str(tmp_path / "ck"))
        ckpt = str(tmp_path / "ck" / "ckpt_000004.npz")

        # Interrupted after step 6, restored from the step-4 checkpoint.
        resumed = RunWriter.resume(runs_dir / "full", from_step=4)
        set_run(resumed)
        try:
            train_model(model(), train, test, steps=10, batch_size=64,
                        resume_from=ckpt)
        finally:
            resumed.finalize()
            set_run(None)

        events = RunStore(runs_dir).events("full")
        step_events = [e["step"] for e in events
                       if e["kind"] == "step"]
        assert step_events == list(range(10))
        routing_steps = [e["step"] for e in events
                         if e["kind"] == "routing"]
        assert routing_steps == list(range(10))  # one MoE layer
        assert [e["kind"] for e in events].count("ckpt_restored") == 1
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)


class TestRunStore:
    def _populate(self, tmp_path):
        make_run(tmp_path, "old", 10.0, seed=1,
                 summary={"loss": 1.0, "note": "text"})
        make_run(tmp_path, "mid", 20.0, seed=2,
                 summary={"loss": 0.6})
        make_run(tmp_path, "new", 30.0, seed=3,
                 summary={"loss": 0.4, "acc": 0.9})
        return RunStore(tmp_path)

    def test_listing_sorted_by_created_at(self, tmp_path):
        store = self._populate(tmp_path)
        assert store.run_ids() == ["old", "mid", "new"]
        assert store.latest() == "new"

    def test_missing_root_lists_empty(self, tmp_path):
        store = RunStore(tmp_path / "nope")
        assert store.run_ids() == []
        with pytest.raises(KeyError):
            store.latest()

    def test_resolve_latest_exact_prefix(self, tmp_path):
        store = self._populate(tmp_path)
        assert store.resolve("latest") == "new"
        assert store.resolve("mid") == "mid"
        assert store.resolve("ne") == "new"
        with pytest.raises(KeyError, match="no run"):
            store.resolve("zzz")

    def test_resolve_ambiguous_prefix_raises(self, tmp_path):
        make_run(tmp_path, "run-a1", 1.0)
        make_run(tmp_path, "run-a2", 2.0)
        with pytest.raises(KeyError, match="ambiguous"):
            RunStore(tmp_path).resolve("run-a")

    def test_diff_reports_deltas(self, tmp_path):
        store = self._populate(tmp_path)
        deltas = {d.name: d for d in store.diff("old", "new")}
        loss = deltas["summary.loss"]
        assert loss.a == 1.0 and loss.b == 0.4
        assert loss.delta == pytest.approx(-0.6)
        # one-sided metric: present in b only, delta undefined
        assert deltas["summary.acc"].a is None
        assert deltas["summary.acc"].delta is None
        # non-numeric summary entries are not compared
        assert "summary.note" not in deltas


class TestGc:
    def test_gc_removes_oldest_by_manifest_timestamp(self, tmp_path):
        # Creation *order* disagrees with the manifest timestamps --
        # gc must honor created_at, not directory mtime.
        make_run(tmp_path, "newest", 30.0)
        make_run(tmp_path, "oldest", 10.0)
        make_run(tmp_path, "middle", 20.0)
        store = RunStore(tmp_path)
        removed = store.gc(keep=2)
        assert removed == ["oldest"]
        assert store.run_ids() == ["middle", "newest"]
        assert not (tmp_path / "oldest").exists()

    def test_gc_dry_run_removes_nothing(self, tmp_path):
        make_run(tmp_path, "a", 1.0)
        make_run(tmp_path, "b", 2.0)
        store = RunStore(tmp_path)
        assert store.gc(keep=1, dry_run=True) == ["a"]
        assert store.run_ids() == ["a", "b"]

    def test_gc_keep_zero_and_noop(self, tmp_path):
        make_run(tmp_path, "a", 1.0)
        store = RunStore(tmp_path)
        assert store.gc(keep=5) == []
        assert store.gc(keep=0) == ["a"]
        assert store.run_ids() == []

    def test_gc_negative_keep_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunStore(tmp_path).gc(keep=-1)


class TestRoots:
    def test_runs_root_precedence(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_RUNS_DIR", raising=False)
        assert env_runs_root() is None
        assert str(runs_root()) == DEFAULT_RUNS_DIR
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert runs_root() == tmp_path
        assert str(runs_root("explicit")) == "explicit"

    def test_trainer_auto_opens_run(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                  num_classes=4, noise=0.4, seed=0)
        model = MoEClassifier(8, 16, 32, 4, num_blocks=2,
                              num_experts=8,
                              rng=np.random.default_rng(0), top_k=2)
        result = train_model(model, task.sample(256), task.sample(128),
                             steps=4, batch_size=64)
        assert get_run() is None              # uninstalled afterwards
        assert result.run_id is not None
        store = RunStore(tmp_path)
        manifest = store.manifest(result.run_id)
        assert manifest.status == "complete"
        assert manifest.summary["eval_accuracy"] == pytest.approx(
            result.eval_accuracy)
        kinds = {e["kind"] for e in store.events(result.run_id)}
        assert {"train_begin", "step", "routing", "eval"} <= kinds
