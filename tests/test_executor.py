"""Tests for the multicore expert-parallel FFN executor.

The load-bearing claim: the parallel path (worker processes + shared
memory + backward recompute) is **bitwise identical** to the serial
fused path, because both run the same :func:`ffn_forward_arrays` /
:func:`ffn_backward_arrays` kernels on the same operand bytes.  The
executor may therefore be toggled freely without perturbing training.
"""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core.substrate import expert_parallelism, substrate_dtype
from repro.runtime.executor import (
    ExpertParallelExecutor,
    ffn_backward_arrays,
    ffn_forward_arrays,
    get_executor,
    shutdown_executor,
)


def ffn_case(e=4, c=6, m=5, v=7, dtype=np.float32, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(e, c, m)).astype(dtype)
    w1 = rng.normal(size=(e, m, v)).astype(dtype)
    w2 = rng.normal(size=(e, v, m)).astype(dtype)
    gy = rng.normal(size=(e, c, m)).astype(dtype)
    return x, w1, w2, gy


@pytest.fixture
def executor():
    ex = ExpertParallelExecutor(num_workers=2)
    yield ex
    ex.close()


class TestArrayKernels:
    @pytest.mark.parametrize("activation", ["gelu", "relu"])
    def test_forward_matches_autograd_reference(self, activation):
        from repro.autograd.functional import gelu, relu

        x, w1, w2, _ = ffn_case(dtype=np.float64)
        y, _ = ffn_forward_arrays(x, w1, w2, activation)
        act = gelu if activation == "gelu" else relu
        with substrate_dtype(np.float64):
            h = Tensor(x) @ Tensor(w1)
            ref = (act(h) @ Tensor(w2)).data
        np.testing.assert_array_equal(y, ref)

    @pytest.mark.parametrize("activation", ["gelu", "relu"])
    def test_backward_matches_autograd_reference(self, activation):
        from repro.autograd.functional import gelu, relu

        x, w1, w2, gy = ffn_case(dtype=np.float64)
        gx, gw1, gw2 = ffn_backward_arrays(x, w1, w2, gy, activation)
        act = gelu if activation == "gelu" else relu
        with substrate_dtype(np.float64):
            xt = Tensor(x, requires_grad=True)
            w1t = Tensor(w1, requires_grad=True)
            w2t = Tensor(w2, requires_grad=True)
            y = act(xt @ w1t) @ w2t
            (y * Tensor(gy)).sum().backward()
        np.testing.assert_allclose(gx, xt.grad, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(gw1, w1t.grad, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(gw2, w2t.grad, rtol=1e-12, atol=1e-12)

    def test_recompute_equals_saved(self):
        # The stateless worker protocol recomputes (h, a); it must give
        # the exact same gradients as the saved-activations path.
        x, w1, w2, gy = ffn_case(dtype=np.float32)
        _, saved = ffn_forward_arrays(x, w1, w2, "gelu")
        with_saved = ffn_backward_arrays(x, w1, w2, gy, "gelu", saved)
        recomputed = ffn_backward_arrays(x, w1, w2, gy, "gelu", None)
        for a, b in zip(with_saved, recomputed):
            np.testing.assert_array_equal(a, b)

    def test_unknown_activation_rejected(self):
        x, w1, w2, _ = ffn_case()
        with pytest.raises(ValueError, match="activation"):
            ffn_forward_arrays(x, w1, w2, "swish")


class TestExecutorAgreement:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_forward_bitwise_identical_to_serial(self, executor, dtype):
        x, w1, w2, _ = ffn_case(dtype=dtype)
        y_par = executor.ffn_forward(x, w1, w2, "gelu")
        y_ser, _ = ffn_forward_arrays(x, w1, w2, "gelu")
        assert y_par.dtype == dtype
        np.testing.assert_array_equal(y_par, y_ser)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_backward_bitwise_identical_to_serial(self, executor, dtype):
        x, w1, w2, gy = ffn_case(dtype=dtype)
        par = executor.ffn_backward(x, w1, w2, gy, "gelu")
        ser = ffn_backward_arrays(x, w1, w2, gy, "gelu", None)
        for p, s in zip(par, ser):
            assert p.dtype == dtype
            np.testing.assert_array_equal(p, s)

    def test_uneven_expert_chunks(self, executor):
        # 5 experts over 2 workers: chunks (0,2)/(2,5) must still
        # cover every expert exactly once.
        x, w1, w2, _ = ffn_case(e=5)
        y_par = executor.ffn_forward(x, w1, w2, "relu")
        y_ser, _ = ffn_forward_arrays(x, w1, w2, "relu")
        np.testing.assert_array_equal(y_par, y_ser)

    def test_more_workers_than_experts(self):
        ex = ExpertParallelExecutor(num_workers=4)
        try:
            x, w1, w2, _ = ffn_case(e=2)
            y_par = ex.ffn_forward(x, w1, w2, "gelu")
            y_ser, _ = ffn_forward_arrays(x, w1, w2, "gelu")
            np.testing.assert_array_equal(y_par, y_ser)
        finally:
            ex.close()

    def test_slabs_grow_and_are_reused(self, executor):
        small = ffn_case(e=2, c=3, m=4, v=5)
        big = ffn_case(e=4, c=8, m=6, v=9, seed=1)
        for x, w1, w2, _ in (small, big, small):
            y_par = executor.ffn_forward(x, w1, w2, "gelu")
            y_ser, _ = ffn_forward_arrays(x, w1, w2, "gelu")
            np.testing.assert_array_equal(y_par, y_ser)
        assert executor.calls == 3

    def test_output_not_aliased_to_slab(self, executor):
        # The returned array must be a private copy: the next call
        # reuses the slab and would otherwise corrupt the graph.
        x, w1, w2, _ = ffn_case()
        y1 = executor.ffn_forward(x, w1, w2, "gelu")
        snapshot = y1.copy()
        executor.ffn_forward(x * 2.0, w1, w2, "gelu")
        np.testing.assert_array_equal(y1, snapshot)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            ExpertParallelExecutor(num_workers=0)


class TestSubstrateWiring:
    def test_get_executor_off_by_default(self):
        assert get_executor() is None

    def test_get_executor_sized_from_config(self):
        try:
            with expert_parallelism(2):
                ex = get_executor()
                assert ex is not None and ex.num_workers == 2
                # Resizes (new instance) when the config changes.
                with expert_parallelism(3):
                    ex3 = get_executor()
                    assert ex3 is not None and ex3.num_workers == 3
            assert get_executor() is None
        finally:
            shutdown_executor()

    def test_expert_ffn_parallel_matches_serial(self):
        from repro.autograd.moe_ops import expert_ffn

        x, w1, w2, gy = ffn_case(e=4, c=8, m=6, v=10)

        def run():
            xt = Tensor(x, requires_grad=True)
            w1t = Tensor(w1, requires_grad=True)
            w2t = Tensor(w2, requires_grad=True)
            y = expert_ffn(xt, w1t, w2t, "gelu")
            (y * Tensor(gy)).sum().backward()
            return y.data, xt.grad, w1t.grad, w2t.grad

        serial = run()
        try:
            with expert_parallelism(2):
                parallel = run()
        finally:
            shutdown_executor()
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s, p)

    def test_broken_executor_falls_back_to_serial(self, monkeypatch):
        from repro.autograd.moe_ops import expert_ffn
        from repro.runtime import executor as executor_mod

        x, w1, w2, gy = ffn_case()
        try:
            with expert_parallelism(2):
                ex = get_executor()
                assert ex is not None
                monkeypatch.setattr(
                    ex, "_run",
                    lambda *a, **k: (_ for _ in ()).throw(
                        OSError("pool died")))
                xt = Tensor(x, requires_grad=True)
                w1t = Tensor(w1, requires_grad=True)
                w2t = Tensor(w2, requires_grad=True)
                y = expert_ffn(xt, w1t, w2t, "gelu")
                (y * Tensor(gy)).sum().backward()
                assert ex.broken
                assert get_executor() is None  # latched off
        finally:
            shutdown_executor()
        # Compare against the serial kernel on the *tensor* operands:
        # leaf coercion may have cast them to the substrate default.
        y_ser, _ = ffn_forward_arrays(xt.data, w1t.data, w2t.data, "gelu")
        np.testing.assert_array_equal(y.data, y_ser)
        assert xt.grad is not None
