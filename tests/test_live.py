"""Tests for the live telemetry plane (repro.obs.live): the tolerant
run tailer and the streaming metrics/alerts HTTP server."""

import json
import threading
import time
import urllib.request

import pytest

from repro.obs.live import LiveServer, RunTailer
from repro.obs.prometheus import parse_prometheus
from repro.obs.runs import RunWriter, set_run


@pytest.fixture(autouse=True)
def _no_leaked_run():
    yield
    set_run(None)


def make_run(root, events=(), finalize=True, run_id="r1"):
    writer = RunWriter.create(root=root, run_id=run_id, seed=0,
                              config={})
    for kind, step, data in events:
        writer.emit(kind, step=step, data=data)
    if finalize:
        writer.finalize(summary={})
    return writer


def get(url, headers=None, timeout=10):
    req = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.read().decode()


def sse_events(payload):
    """Decode an SSE payload into a list of (id, event-dict)."""
    out = []
    current_id = None
    for line in payload.splitlines():
        if line.startswith("id: "):
            current_id = int(line[4:])
        elif line.startswith("data: ") and line != "data: {}":
            out.append((current_id, json.loads(line[6:])))
    return out


STEP_EVENTS = [
    ("train_begin", 0, {"steps": 3}),
    ("step", 0, {"loss": 2.0, "grad_norm": 1.0}),
    ("routing", 0, {"layer": 0, "entropy": 0.9,
                    "dropped_fraction": 0.0,
                    "expert_load": [8, 8, 8, 8]}),
    ("step", 1, {"loss": 1.5, "grad_norm": 0.9}),
    ("step", 2, {"loss": 1.2, "grad_norm": 0.8}),
]


class TestRunTailer:
    def test_folds_events_incrementally(self, tmp_path):
        writer = make_run(tmp_path, finalize=False)
        tailer = RunTailer(writer.directory)
        assert tailer.poll() == 0  # nothing emitted yet
        writer.emit("step", step=0, data={"loss": 2.0})
        writer.emit("step", step=1, data={"loss": 1.0})
        added = tailer.poll()
        assert added == 2
        assert tailer.registry.gauges["train.loss"].value == 1.0
        assert tailer.poll() == 0  # no new lines, no double-count
        writer.finalize(summary={})
        tailer.poll()
        assert tailer.complete()

    def test_tolerates_torn_final_line(self, tmp_path):
        writer = make_run(tmp_path, events=STEP_EVENTS[:2],
                          finalize=False)
        path = writer.directory / "events.jsonl"
        whole = path.read_text()
        # Simulate a writer caught mid-line: half a JSON record with
        # no trailing newline.
        torn = '{"schema": 1, "seq": 99, "kind": "st'
        path.write_text(whole + torn)
        tailer = RunTailer(writer.directory)
        tailer.poll()
        events = tailer.snapshot_events()
        assert [e["seq"] for e in events] == [0, 1]
        assert tailer.skipped_lines == 0
        # The writer finishes the line: the tail must pick it up whole.
        path.write_text(whole + torn + 'ep", "step": 9, "data": {}}\n')
        assert tailer.poll() == 1
        assert tailer.snapshot_events()[-1]["seq"] == 99

    def test_skips_corrupt_complete_line(self, tmp_path):
        writer = make_run(tmp_path, events=STEP_EVENTS[:2],
                          finalize=False)
        path = writer.directory / "events.jsonl"
        with open(path, "a") as fh:
            fh.write("!!corrupt!!\n")
        writer.emit("step", step=5, data={"loss": 0.5})
        tailer = RunTailer(writer.directory)
        tailer.poll()
        assert tailer.skipped_lines == 1
        assert tailer.snapshot_events()[-1]["step"] == 5

    def test_ticks_alert_engine_on_steps(self, tmp_path):
        # Three steps with a dead expert (share 0) and collapsed
        # entropy: the entropy rule (for_ticks=3) must fire on the
        # tailer's own engine by the 4th step tick.
        events = [("train_begin", 0, {})]
        for s in range(6):
            events.append(("step", s, {"loss": 1.0}))
            events.append(("routing", s, {
                "layer": 0, "entropy": 0.1, "dropped_fraction": 0.5,
                "expert_load": [0, 10, 10, 10]}))
        writer = make_run(tmp_path, events=events)
        tailer = RunTailer(writer.directory)
        tailer.poll()
        assert "routing_entropy_floor" in tailer.engine.firing()
        assert "drop_rate_high" in tailer.engine.firing()
        text = tailer.render_metrics()
        fam = parse_prometheus(text)["ALERTS"]
        key = 'ALERTS{alertname="routing_entropy_floor",severity="warn"}'
        assert fam["samples"][key] == 1.0

    def test_mirrors_inprocess_alert_events(self, tmp_path):
        writer = make_run(tmp_path, events=[
            ("alert", 3, {"alertname": "serving_p99_high",
                          "severity": "critical", "state": "firing",
                          "value": 99.0, "threshold": 50.0,
                          "message": "x [firing]"})])
        tailer = RunTailer(writer.directory)
        tailer.poll()
        fam = parse_prometheus(tailer.render_metrics())["ALERTS"]
        key = ('ALERTS{alertname="serving_p99_high"'
               ',severity="critical"}')
        assert fam["samples"][key] == 1.0

    def test_fault_events_update_outstanding_gauge(self, tmp_path):
        writer = make_run(tmp_path, events=[
            ("fault", None, {"kind": "link_brownout"}),
            ("step", 0, {"loss": 1.0})])
        tailer = RunTailer(writer.directory)
        tailer.poll()
        assert tailer.engine.outstanding_faults == 1
        reg = tailer.registry
        assert reg.gauges["faults.outstanding"].value == 1.0


class TestLiveServer:
    def test_metrics_advance_between_scrapes(self, tmp_path):
        """The tentpole acceptance check: scrape /metrics twice while
        the producer is mid-run; both parse, and the second shows
        more events than the first."""
        writer = make_run(tmp_path, events=STEP_EVENTS[:3],
                          finalize=False)
        with LiveServer(writer.directory, port=0) as srv:
            first = parse_prometheus(get(srv.url + "/metrics"))
            n1 = first["run_events_total"]["samples"][
                "run_events_total"]
            writer.emit("step", step=1, data={"loss": 0.9})
            writer.emit("step", step=2, data={"loss": 0.8})
            writer.finalize(summary={})
            second = parse_prometheus(get(srv.url + "/metrics"))
            n2 = second["run_events_total"]["samples"][
                "run_events_total"]
            assert n2 > n1
            assert second["train_loss"]["samples"]["train_loss"] == 0.8

    def test_healthz_reports_run_state(self, tmp_path):
        writer = make_run(tmp_path, events=STEP_EVENTS)
        with LiveServer(writer.directory, port=0) as srv:
            payload = json.loads(get(srv.url + "/healthz"))
            assert payload["status"] == "ok"
            assert payload["run_id"] == "r1"
            assert payload["run_status"] == "complete"
            assert payload["events"] == len(STEP_EVENTS)
            assert payload["last_seq"] == len(STEP_EVENTS) - 1

    def test_sse_streams_with_seq_ids(self, tmp_path):
        writer = make_run(tmp_path, events=STEP_EVENTS)
        with LiveServer(writer.directory, port=0) as srv:
            got = sse_events(get(srv.url + "/events?max=3"))
            assert [i for i, _ in got] == [0, 1, 2]
            assert got[0][1]["kind"] == "train_begin"

    def test_sse_resumes_from_last_event_id(self, tmp_path):
        writer = make_run(tmp_path, events=STEP_EVENTS)
        with LiveServer(writer.directory, port=0) as srv:
            full = sse_events(get(srv.url + "/events"))
            # Header resume: everything strictly after seq 2.
            resumed = sse_events(get(
                srv.url + "/events",
                headers={"Last-Event-ID": "2"}))
            assert [i for i, _ in resumed] == \
                [i for i, _ in full if i > 2]
            # Query resume: everything from seq 3 inclusive.
            q = sse_events(get(srv.url + "/events?from=3"))
            assert q == resumed

    def test_sse_follows_live_run_to_completion(self, tmp_path):
        writer = make_run(tmp_path, events=STEP_EVENTS[:2],
                          finalize=False)

        def finish():
            time.sleep(0.3)
            writer.emit("fault", step=None,
                        data={"kind": "expert_failure"})
            writer.finalize(summary={})

        with LiveServer(writer.directory, port=0,
                        poll_interval=0.05) as srv:
            t = threading.Thread(target=finish)
            t.start()
            payload = get(srv.url + "/events")  # runs until complete
            t.join()
        kinds = [e["kind"] for _, e in sse_events(payload)]
        assert "fault" in kinds
        assert payload.endswith("event: end\ndata: {}\n\n")

    def test_dashboard_route_renders_with_refresh(self, tmp_path):
        writer = make_run(tmp_path, events=STEP_EVENTS)
        with LiveServer(writer.directory, port=0) as srv:
            html = get(srv.url + "/?refresh=5")
            assert "<html" in html
            assert '<meta http-equiv="refresh" content="5">' in html
            plain = get(srv.url + "/")
            assert 'http-equiv="refresh"' not in plain

    def test_unknown_route_404s(self, tmp_path):
        writer = make_run(tmp_path, events=STEP_EVENTS)
        with LiveServer(writer.directory, port=0) as srv:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(srv.url + "/nope")
            assert err.value.code == 404
