"""Tests for repro.obs.analysis: critical paths, attribution, what-if."""

import numpy as np
import pytest

from repro import obs
from repro.cluster.simulator import Schedule, simulate
from repro.cluster.topology import ndv4_topology
from repro.cluster.trace import (
    CAT_CRITICAL,
    load_sim_trace,
    save_chrome_trace,
    to_chrome_trace,
)
from repro.core.config import MoEConfig
from repro.obs import analysis
from repro.pipeline.schedule import (
    PipelineStrategy,
    all_strategies,
    build_pipeline_schedule,
)


def random_host_schedule(seed, num_ops=120):
    """Random interference-free DAG (same shape as test_simulator's)."""
    rng = np.random.default_rng(seed)
    s = Schedule()
    ops = []
    for i in range(num_ops):
        num_deps = int(rng.integers(0, 4)) if ops else 0
        deps = tuple(ops[int(j)] for j in set(
            rng.integers(0, len(ops), num_deps).tolist())) \
            if num_deps else ()
        work = float(rng.uniform(0.0, 0.05))
        if rng.uniform() < 0.1:
            work = 0.0
        ops.append(s.new_op(
            work=work, gpu=int(rng.integers(0, 4)),
            stream=str(rng.choice(["s0", "s1"])),
            kind=str(rng.choice(["host", "compute", "comm"])),
            deps=deps, label=f"op{i}"))
    return s


def brute_force_longest_path(result):
    """Longest work-weighted chain through deps + realized FIFO edges.

    On an interference-free schedule the finish time of every op is
    exactly ``work + max(predecessor finishes)``, so the global longest
    chain equals the makespan — an independent check of both the
    simulator and :func:`analysis.critical_path`.
    """
    spans = result.spans
    preds = {op: list(op.deps) for op in spans}
    by_stream = {}
    for op in spans:
        by_stream.setdefault((op.gpu, op.stream), []).append(op)
    for lane in by_stream.values():
        lane.sort(key=lambda o: (spans[o][0], spans[o][1], o._uid))
        for prev, nxt in zip(lane, lane[1:]):
            preds[nxt].append(prev)

    finish = {}

    def dp(op):
        if op not in finish:
            finish[op] = op.work + max(
                (dp(p) for p in preds[op]), default=0.0)
        return finish[op]

    return max(dp(op) for op in spans)


class TestCriticalPath:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_agrees_with_brute_force_on_random_dags(self, seed):
        # Interference-free: use only host kind so rates are all 1.0.
        rng = np.random.default_rng(seed)
        s = Schedule()
        ops = []
        for i in range(150):
            num_deps = int(rng.integers(0, 4)) if ops else 0
            deps = tuple(ops[int(j)] for j in set(
                rng.integers(0, len(ops), num_deps).tolist())) \
                if num_deps else ()
            work = 0.0 if rng.uniform() < 0.1 else \
                float(rng.uniform(0.0, 0.05))
            ops.append(s.new_op(
                work=work, gpu=int(rng.integers(0, 4)),
                stream=str(rng.choice(["s0", "s1"])), kind="host",
                deps=deps, label=f"op{i}"))
        result = simulate(s)
        longest = brute_force_longest_path(result)
        assert result.makespan == pytest.approx(longest)
        path = critical = analysis.critical_path(result)
        total = sum(result.spans[op][1] - result.spans[op][0]
                    for op in critical)
        assert total == pytest.approx(result.makespan)
        # The chain is contiguous in time and ends at the makespan.
        assert result.spans[path[0]][0] == pytest.approx(0.0)
        assert result.spans[path[-1]][1] == pytest.approx(result.makespan)
        for a, b in zip(path, path[1:]):
            assert result.spans[a][1] == pytest.approx(result.spans[b][0])

    def test_empty_schedule(self):
        result = simulate(Schedule())
        assert analysis.critical_path(result) == []

    def test_single_chain(self):
        s = Schedule()
        a = s.new_op(work=1.0, kind="host", label="a")
        b = s.new_op(work=2.0, kind="host", deps=(a,), label="b")
        s.new_op(work=0.5, gpu=1, kind="host", label="off-path")
        result = simulate(s)
        path = analysis.critical_path(result)
        assert [op.label for op in path] == ["a", "b"]

    def test_breakdown_sums_to_chain_span(self):
        s = random_host_schedule(11)
        result = simulate(s)
        path = analysis.critical_path(result)
        bd = analysis.critical_path_breakdown(result, path)
        total = sum(result.spans[op][1] - result.spans[op][0]
                    for op in path)
        assert sum(bd.values()) == pytest.approx(total)
        assert set(bd) == {"compute", "comm", "other"}


class TestAttribution:
    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_stream_partition_is_exact(self, seed):
        result = simulate(random_host_schedule(seed))
        for lane in analysis.stream_attribution(result):
            total = lane.compute + lane.comm + lane.other + lane.idle
            assert total == pytest.approx(result.makespan)
            assert lane.idle >= -1e-9

    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_gpu_partition_is_exact(self, seed):
        result = simulate(random_host_schedule(seed))
        for g in analysis.gpu_attribution(result):
            total = g.compute + g.comm + g.other + g.idle
            assert total == pytest.approx(result.makespan)
            assert g.idle >= -1e-9
            assert 0.0 <= g.comm_overlapped <= g.comm_active + 1e-12

    def test_fully_serial_has_no_overlap(self):
        s = Schedule()
        a = s.new_op(work=1.0, stream="comm", kind="comm", label="a")
        s.new_op(work=1.0, stream="compute", kind="compute", deps=(a,),
                 label="b")
        result = simulate(s)
        assert analysis.overlap_efficiency(result) == pytest.approx(0.0)

    def test_perfect_overlap(self):
        s = Schedule()
        s.new_op(work=1.0, stream="comm", kind="comm", label="a")
        s.new_op(work=2.0, stream="compute", kind="compute", label="b")
        result = simulate(s)
        # All communication time has concurrent compute above it.
        assert analysis.overlap_efficiency(result) == pytest.approx(1.0)


def _fig22_cfg(world=64, f=4.0):
    return MoEConfig(world_size=world, experts_per_gpu=2,
                     model_dim=4096, hidden_dim=4096,
                     tokens_per_gpu=4096, top_k=2, capacity_factor=f)


class TestPipelineAcceptance:
    """The ISSUE acceptance criteria on the Figure 22 schedule."""

    def test_attribution_sums_and_overlap_increases(self):
        cfg = _fig22_cfg()
        topo = ndv4_topology(cfg.world_size)
        base_sched = build_pipeline_schedule(
            cfg, topo, PipelineStrategy(degree=1))
        base = simulate(base_sched)
        best_strategy = min(
            all_strategies(),
            key=lambda s: simulate(
                build_pipeline_schedule(cfg, topo, s)).makespan)
        assert best_strategy.degree > 1
        best_sched = build_pipeline_schedule(cfg, topo, best_strategy)
        best = simulate(best_sched)

        for result in (base, best):
            for lane in analysis.stream_attribution(result):
                assert lane.compute + lane.comm + lane.other + lane.idle \
                    == pytest.approx(result.makespan)
        base_eff = analysis.overlap_efficiency(base)
        best_eff = analysis.overlap_efficiency(best)
        assert base_eff == pytest.approx(0.0)
        assert best_eff > base_eff  # strictly increases with pipelining

    def test_whatif_bounds_ordering(self):
        cfg = _fig22_cfg()
        topo = ndv4_topology(cfg.world_size)
        sched = build_pipeline_schedule(cfg, topo,
                                        PipelineStrategy(degree=2))
        bounds = analysis.whatif_bounds(sched)
        assert bounds["zero_comm"] <= bounds["infinite_bandwidth"] + 1e-12
        assert bounds["infinite_bandwidth"] <= bounds["actual"] + 1e-12
        assert bounds["actual"] == pytest.approx(
            simulate(sched).makespan)
        # The latency floor is a real (nonzero) gap from free comms.
        assert bounds["infinite_bandwidth"] > bounds["zero_comm"]

    def test_whatif_does_not_pollute_observer(self):
        ob = obs.enable()
        try:
            cfg = _fig22_cfg(world=16)
            sched = build_pipeline_schedule(
                cfg, ndv4_topology(16), PipelineStrategy(degree=2))
            before = len(ob.recorder.events)
            analysis.whatif_bounds(sched)
            assert len(ob.recorder.events) == before
        finally:
            obs.disable()

    def test_clone_schedule_preserves_makespan(self):
        sched = random_host_schedule(21)
        clone = analysis.clone_schedule(sched)
        assert simulate(clone).makespan == \
            pytest.approx(simulate(sched).makespan)
        assert not (set(clone.ops) & set(sched.ops))


class TestAnalyzeReport:
    def test_report_fields_and_render(self):
        cfg = _fig22_cfg()
        topo = ndv4_topology(cfg.world_size)
        sched = build_pipeline_schedule(cfg, topo,
                                        PipelineStrategy(degree=2))
        result = simulate(sched)
        report = analysis.analyze(result, sched)
        assert report.makespan == result.makespan
        assert len(report.critical) == len(report.critical_times)
        assert report.bounds  # schedule given -> bounds computed
        text = report.render()
        assert "Per-stream attribution" in text
        assert "Critical path" in text
        assert "what-if bounds" in text

    def test_analyze_without_schedule_recovers_ops(self):
        result = simulate(random_host_schedule(3))
        report = analysis.analyze(result)
        assert report.bounds  # recovered from result.spans


class TestCriticalTraceExport:
    def test_critical_ops_get_category_and_flow_events(self):
        s = Schedule()
        a = s.new_op(work=1.0, kind="comm", stream="comm", label="a")
        b = s.new_op(work=1.0, kind="compute", deps=(a,), label="b")
        s.new_op(work=0.1, gpu=1, kind="host", label="off")
        result = simulate(s)
        path = analysis.critical_path(result)
        assert [op.label for op in path] == ["a", "b"]
        events = to_chrome_trace(result, critical=path)
        crit_spans = [e for e in events
                      if e.get("cat") == CAT_CRITICAL
                      and e["ph"] in ("X", "i")]
        assert len(crit_spans) == 2
        assert [e["args"]["critical_index"] for e in crit_spans] == [0, 1]
        flows = [e for e in events if e.get("name") == "critical_path"]
        assert [e["ph"] for e in flows] == ["s", "f"]
        off = [e for e in events if e["name"] == "off"]
        assert off[0]["cat"] == "sim"

    def test_trace_roundtrip_reanalyzes_identically(self, tmp_path):
        cfg = _fig22_cfg()
        topo = ndv4_topology(cfg.world_size)
        sched = build_pipeline_schedule(cfg, topo,
                                        PipelineStrategy(degree=2))
        result = simulate(sched)
        path = analysis.critical_path(result)
        trace = tmp_path / "trace.json"
        save_chrome_trace(result, trace, critical=path)
        loaded_result, loaded_sched = load_sim_trace(trace)
        assert loaded_result.makespan == pytest.approx(result.makespan)
        reloaded = analysis.analyze(loaded_result, loaded_sched)
        assert [op.label for op in reloaded.critical] == \
            [op.label for op in path]
        assert reloaded.overlap_efficiency == pytest.approx(
            analysis.overlap_efficiency(result))

    def test_load_rejects_foreign_trace(self, tmp_path):
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"traceEvents": [{"ph": "X", "ts": 0, '
                           '"dur": 1, "name": "x", "args": {}}]}')
        with pytest.raises(ValueError):
            load_sim_trace(foreign)
