"""Tests for the cluster topology and link models."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.linkmodel import (
    a2a_bus_bandwidth,
    contiguous_memcpy_time,
    ib_write_bandwidth_curve,
    pairwise_exchange_time,
    stride_memcpy_time,
)
from repro.cluster.topology import (
    ClusterTopology,
    GpuSpec,
    LinkSpec,
    ndv4_topology,
    nvswitch256_topology,
)
from repro.core.units import GIB, KIB, MIB


@pytest.fixture
def link():
    return LinkSpec(bandwidth=25e9, latency=4e-6, message_overhead=3e-6)


class TestLinkSpec:
    def test_message_time_components(self, link):
        t = link.message_time(25e9)  # 1 second of payload
        assert t == pytest.approx(1.0 + 4e-6 + 3e-6)

    def test_zero_bytes_free(self, link):
        assert link.message_time(0) == 0.0

    def test_stream_time_pays_overhead_per_message(self, link):
        one = link.stream_time(1024, 1)
        ten = link.stream_time(1024, 10)
        assert ten > 9 * (one - link.latency)

    def test_stream_time_zero_messages(self, link):
        assert link.stream_time(1024, 0) == 0.0

    def test_effective_bandwidth_saturates(self, link):
        small = link.effective_bandwidth(1 * KIB)
        large = link.effective_bandwidth(256 * MIB)
        assert small < 0.1 * link.bandwidth
        assert large > 0.95 * link.bandwidth

    def test_effective_bandwidth_monotone(self, link):
        sizes = [2 ** i * KIB for i in range(16)]
        curve = [link.effective_bandwidth(s) for s in sizes]
        assert curve == sorted(curve)

    def test_rejects_negative_size(self, link):
        with pytest.raises(ValueError):
            link.message_time(-1)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0, latency=0, message_overhead=0)

    @given(nbytes=st.floats(1, 1e9), n=st.integers(1, 1000))
    def test_stream_time_positive_and_additive(self, nbytes, n):
        link = LinkSpec(bandwidth=25e9, latency=4e-6,
                        message_overhead=3e-6)
        t = link.stream_time(nbytes, n)
        assert t > 0
        assert t >= n * nbytes / link.bandwidth


class TestTopology:
    def test_node_mapping(self):
        topo = ndv4_topology(32)
        assert topo.num_nodes == 4
        assert topo.node_of(0) == 0
        assert topo.node_of(8) == 1
        assert topo.local_rank_of(13) == 5
        assert topo.same_node(0, 7)
        assert not topo.same_node(7, 8)

    def test_link_between(self):
        topo = ndv4_topology(16)
        assert topo.link_between(0, 1) is topo.intra_link
        assert topo.link_between(0, 9) is topo.inter_link

    def test_rank_bounds(self):
        topo = ndv4_topology(8)
        with pytest.raises(ValueError):
            topo.node_of(8)
        with pytest.raises(ValueError):
            topo.node_of(-1)

    def test_local_size_small_world(self):
        assert ndv4_topology(4).local_size == 4
        assert ndv4_topology(64).local_size == 8

    def test_with_num_gpus(self):
        topo = ndv4_topology(8)
        bigger = topo.with_num_gpus(2048)
        assert bigger.num_gpus == 2048
        assert bigger.intra_link == topo.intra_link

    def test_nvlink_much_faster_than_ib(self):
        topo = ndv4_topology(16)
        assert topo.intra_link.bandwidth > 5 * topo.inter_link.bandwidth

    def test_nvswitch256_extension(self):
        topo = nvswitch256_topology(1024)
        assert topo.gpus_per_node == 256
        assert topo.num_nodes == 4

    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            ClusterTopology(num_gpus=0, gpus_per_node=8, gpu=GpuSpec(),
                            intra_link=LinkSpec(1, 0, 0),
                            inter_link=LinkSpec(1, 0, 0))


class TestMemoryMovement:
    def test_stride_copy_slower_for_small_chunks(self):
        gpu = GpuSpec()
        fast = stride_memcpy_time(gpu, 128 * MIB, 1 * MIB)
        slow = stride_memcpy_time(gpu, 128 * MIB, 512)
        assert slow > 3 * fast

    def test_stride_copy_zero_bytes(self):
        assert stride_memcpy_time(GpuSpec(), 0, 1024) == 0.0

    def test_contiguous_copy_time(self):
        gpu = GpuSpec()
        t = contiguous_memcpy_time(gpu, 1 * GIB)
        assert t == pytest.approx(gpu.kernel_launch_overhead
                                  + 2 * GIB / gpu.memory_bandwidth)

    def test_stride_penalty_monotone_in_chunk(self):
        # Smaller contiguous runs always cost more per byte (the
        # Section 3.4 chunk-shrink effect; the 600us -> 5ms growth is
        # asserted on the full naive local-aggregation model in
        # test_collectives_schedule).
        gpu = GpuSpec()
        times = [stride_memcpy_time(gpu, 128 * MIB, chunk)
                 for chunk in (512, 4 * KIB, 64 * KIB, 16 * MIB)]
        assert times == sorted(times, reverse=True)


class TestBandwidthCurves:
    def test_figure6a_underutilization(self):
        link = ndv4_topology(16).inter_link
        sizes = [2 ** i * KIB for i in range(0, 19)]  # 1 KiB .. 256 MiB
        curve = ib_write_bandwidth_curve(link, sizes)
        assert curve[0] < 0.05 * link.bandwidth      # 1 KiB: tiny
        assert curve[-1] > 0.95 * link.bandwidth     # 256 MiB: saturated
        assert curve == sorted(curve)

    def test_bus_bandwidth_definition(self):
        topo = ndv4_topology(8)
        # busbw = (S/n)*(n-1)/t
        assert a2a_bus_bandwidth(topo, 8e9, 1.0) == pytest.approx(
            1e9 * 7)

    def test_bus_bandwidth_rejects_zero_time(self):
        with pytest.raises(ValueError):
            a2a_bus_bandwidth(ndv4_topology(8), 1e9, 0.0)

    def test_pairwise_exchange_scales_with_peers(self):
        link = ndv4_topology(16).inter_link
        assert pairwise_exchange_time(link, 30, 4096) > \
            pairwise_exchange_time(link, 3, 4096)
