"""Tests for dynamic workload traces and the Table 6 settings grid."""

import numpy as np
import pytest

from repro.models.workload import (
    TYPICAL_SETTINGS_AXES,
    dynamic_capacity_trace,
    sample_capacity_factors,
    typical_settings,
)


class TestDynamicTrace:
    def test_never_below_one(self):
        trace = dynamic_capacity_trace(1000, layer_index=3)
        assert (trace >= 1.0).all()

    def test_warmup_peak_early(self):
        trace = dynamic_capacity_trace(1000, layer_index=0, peak=4.4)
        early = trace[:50].mean()
        late = trace[-200:].mean()
        assert early > 1.5 * late

    def test_figure1_dynamic_range(self):
        # "the workload changes up to 4.38x in a single training".
        trace = dynamic_capacity_trace(2000, layer_index=9, peak=4.4)
        assert trace.max() / trace.min() > 2.0

    def test_layers_differ(self):
        t0 = dynamic_capacity_trace(500, layer_index=0)
        t9 = dynamic_capacity_trace(500, layer_index=9)
        assert not np.allclose(t0, t9)
        assert t9[-100:].mean() > t0[-100:].mean()

    def test_deterministic_per_seed(self):
        a = dynamic_capacity_trace(100, 2, seed=5)
        b = dynamic_capacity_trace(100, 2, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            dynamic_capacity_trace(0)
        with pytest.raises(ValueError):
            dynamic_capacity_trace(10, layer_index=10, num_layers=10)


class TestTypicalSettings:
    def test_table6_grid_is_243(self):
        # 3^5 combinations at an even world size.
        assert len(typical_settings(16)) == 243

    def test_axes_match_table6(self):
        assert TYPICAL_SETTINGS_AXES["samples_per_step"] == (8, 16, 32)
        assert TYPICAL_SETTINGS_AXES["tokens_per_sample"] == \
            (512, 1024, 2048)
        assert TYPICAL_SETTINGS_AXES["experts_per_gpu"] == (0.5, 1, 2)

    def test_tokens_multiply(self):
        cfgs = typical_settings(16)
        tokens = {c.tokens_per_gpu for c in cfgs}
        assert 8 * 512 in tokens
        assert 32 * 2048 in tokens

    def test_all_configs_valid(self):
        for cfg in typical_settings(64):
            assert cfg.world_size == 64
            assert cfg.capacity_per_gpu >= 1

    def test_rejects_bad_world(self):
        with pytest.raises(ValueError):
            typical_settings(0)


class TestSampledFactors:
    def test_range(self):
        fs = sample_capacity_factors(100, 1.0, 16.0)
        assert (fs >= 1.0).all() and (fs <= 16.0).all()

    def test_log_uniform_spread(self):
        fs = sample_capacity_factors(4000, 1.0, 16.0, seed=1)
        # Roughly half the mass below the geometric midpoint (4.0).
        frac_below = (fs < 4.0).mean()
        assert 0.4 < frac_below < 0.6

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            sample_capacity_factors(0)
        with pytest.raises(ValueError):
            sample_capacity_factors(10, 2.0, 1.0)
