"""Tests for the online pipelining strategy search (Algorithm 2)."""

import pytest

from repro.collectives.schedule import A2AAlgorithm
from repro.pipeline.adaptive import Bucket, OnlinePipeliningSearch
from repro.pipeline.schedule import PipelineStrategy, all_strategies


def oracle(best: PipelineStrategy, f: float = 1.0):
    """Measurement function: the designated strategy is fastest.

    Times scale with the capacity factor ``f`` — the workload
    proportionality Algorithm 2's bucket normalization relies on.
    """
    def measure(strategy: PipelineStrategy) -> float:
        base = 1.0 if strategy == best else 2.0 + strategy.degree * 0.1
        return base * f
    return measure


class TestBucket:
    def test_contains_half_open(self):
        b = Bucket(low=1.0, length=1.0)
        assert b.contains(1.0)
        assert b.contains(1.999)
        assert not b.contains(2.0)

    def test_record_normalizes_by_low(self):
        b = Bucket(low=2.0, length=1.0)
        s = PipelineStrategy(degree=1)
        b.record(s, 4.0, 10.0)  # f twice the low -> halved
        assert b.tried[s] == pytest.approx(5.0)

    def test_record_scores_by_median(self):
        b = Bucket(low=1.0, length=1.0)
        s = PipelineStrategy(degree=1)
        b.record(s, 1.0, 5.0)
        b.record(s, 1.0, 3.0)
        b.record(s, 1.0, 9.0)
        assert b.tried[s] == 5.0

    def test_median_resists_fast_glitch(self):
        # A min-keeping memo would lock in the one spuriously-fast
        # sample of the bad strategy and prefer it forever; the median
        # keeps the honest ranking.
        b = Bucket(low=1.0, length=1.0)
        good = PipelineStrategy(degree=1)
        bad = PipelineStrategy(degree=2)
        for t in (1.0, 1.0, 1.0):
            b.record(good, 1.0, t)
        for t in (2.0, 2.0, 0.1):  # one glitch-deflated sample
            b.record(bad, 1.0, t)
        assert b.score(bad) == 2.0
        assert b.best_strategy() == good

    def test_median_resists_straggler_outlier(self):
        # One straggler-inflated sample must not dethrone the winner.
        b = Bucket(low=1.0, length=1.0)
        good = PipelineStrategy(degree=1)
        other = PipelineStrategy(degree=2)
        for t in (1.0, 5.0, 1.0):  # middle step hit by a straggler
            b.record(good, 1.0, t)
        for t in (1.5, 1.5, 1.5):
            b.record(other, 1.0, t)
        assert b.score(good) == 1.0
        assert b.best_strategy() == good

    def test_sample_window_is_bounded(self):
        from repro.pipeline.adaptive import MAX_BUCKET_SAMPLES
        b = Bucket(low=1.0, length=1.0)
        s = PipelineStrategy(degree=1)
        for i in range(3 * MAX_BUCKET_SAMPLES):
            b.record(s, 1.0, float(i))
        assert len(b.samples[s]) == MAX_BUCKET_SAMPLES

    def test_best_requires_data(self):
        with pytest.raises(ValueError):
            Bucket(low=1.0, length=1.0).best_strategy()


class TestSearch:
    def test_explores_every_strategy_once_per_bucket(self):
        search = OnlinePipeliningSearch(bucket_length=1.0)
        best = PipelineStrategy(degree=4, algorithm=A2AAlgorithm.TWO_DH)
        tried = []
        for _ in range(len(all_strategies())):
            strategy, _ = search.step(1.2, oracle(best))
            tried.append(strategy)
        assert len(set(tried)) == len(all_strategies())

    def test_converges_to_best(self):
        search = OnlinePipeliningSearch(bucket_length=1.0)
        best = PipelineStrategy(degree=2, algorithm=A2AAlgorithm.LINEAR)
        for _ in range(len(all_strategies())):
            search.step(1.2, oracle(best))
        # After exploration, the search sticks to the winner.
        for _ in range(5):
            strategy, _ = search.step(1.2, oracle(best))
            assert strategy == best

    def test_nearby_factors_share_bucket_knowledge(self):
        search = OnlinePipeliningSearch(bucket_length=1.0)
        best = PipelineStrategy(degree=8, algorithm=A2AAlgorithm.TWO_DH)
        for _ in range(len(all_strategies())):
            search.step(1.2, oracle(best))
        # A close-by factor (same bucket) inherits the best strategy
        # without re-exploring.
        strategy = search.get_strategy(1.5)
        assert strategy == best
        assert search.exploration_remaining(1.5) == 0

    def test_distant_factor_explores_fresh(self):
        search = OnlinePipeliningSearch(bucket_length=1.0)
        best = PipelineStrategy(degree=1)
        for _ in range(len(all_strategies())):
            search.step(1.2, oracle(best))
        assert search.exploration_remaining(9.0) == len(all_strategies())

    def test_bucket_rebuild_preserves_measurements(self):
        search = OnlinePipeliningSearch(bucket_length=1.0)
        best = PipelineStrategy(degree=1)
        for _ in range(3):
            search.step(2.0, oracle(best))
        n_before = sum(len(b.tried) for b in search.buckets)
        # Inserting a lower factor re-anchors the buckets.
        search.step(1.5, oracle(best))
        merged = search._bucket_of(2.0)
        assert merged.contains(1.5)
        assert sum(len(b.tried) for b in search.buckets) >= n_before

    def test_per_factor_memo_takes_priority(self):
        search = OnlinePipeliningSearch(
            bucket_length=1.0, strategies=all_strategies()[:2])
        s0, s1 = search.strategies
        # Bucket-level data says s0; factor-level data says s1.
        search.optimize_strategy(1.0, s0, 1.0)
        search.optimize_strategy(1.0, s1, 2.0)
        search.optimize_strategy(1.4, s0, 10.0)
        search.optimize_strategy(1.4, s1, 1.0)
        assert search.get_strategy(1.4) == s1

    def test_known_factor_lookup_is_constant_work(self):
        search = OnlinePipeliningSearch(bucket_length=1.0)
        best = PipelineStrategy(degree=1)
        for _ in range(len(all_strategies())):
            search.step(3.0, oracle(best))
        buckets_before = len(search.buckets)
        search.get_strategy(3.0)
        assert len(search.buckets) == buckets_before

    def test_rejects_bad_inputs(self):
        search = OnlinePipeliningSearch()
        with pytest.raises(ValueError):
            search.get_strategy(0.0)
        with pytest.raises(ValueError):
            search.optimize_strategy(1.0, PipelineStrategy(1), -1.0)
        with pytest.raises(ValueError):
            OnlinePipeliningSearch(bucket_length=0.0)
        with pytest.raises(ValueError):
            OnlinePipeliningSearch(strategies=[])

    def test_regret_vanishes_on_repeated_stream(self):
        # First pass over a dynamic-factor stream pays exploration;
        # replaying the same stream (buckets now stable and fully
        # explored) must always pick the oracle best.
        import numpy as np
        search = OnlinePipeliningSearch(bucket_length=2.0)
        best = PipelineStrategy(degree=4, algorithm=A2AAlgorithm.TWO_DH)
        rng = np.random.default_rng(0)
        factors = [float(f) for f in rng.uniform(1.0, 8.0, 120)]

        def run_pass():
            regret = 0
            for f in factors:
                strategy, _ = search.step(f, oracle(best, f))
                regret += int(strategy != best)
            return regret

        first = run_pass()
        # Total exploration is bounded by (#buckets * #strategies); a
        # few more passes must fully drain it.
        for _ in range(8):
            replay = run_pass()
            if replay == 0:
                break
        assert first > replay
        assert replay == 0
