"""Tests for the layout-aware batched GEMM cost model (Figure 7)."""

import pytest

from repro.cluster.gemm import GemmModel, batched_gemm_time, expert_ffn_time
from repro.cluster.topology import GpuSpec


class TestGemmModel:
    def test_efficiency_monotone_in_rows(self):
        model = GemmModel()
        effs = [model.efficiency(r) for r in (1, 8, 64, 512, 4096, 16384)]
        assert effs == sorted(effs)

    def test_efficiency_bounded(self):
        model = GemmModel()
        assert 0 < model.efficiency(1) < model.eta_max
        assert model.efficiency(10 ** 9) <= model.eta_max

    def test_paper_ratio_8_rows_vs_16384(self):
        # Section 2.4: the (2048, dE, 8, M) layout reaches only 8.8% of
        # the throughput of the (1, dE, 16384, M) layout.
        model = GemmModel()
        ratio = model.efficiency(8) / model.efficiency(16384)
        assert 0.06 < ratio < 0.12

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            GemmModel().efficiency(0)

    def test_rejects_bad_eta(self):
        with pytest.raises(ValueError):
            GemmModel(eta_max=1.5)


class TestBatchedGemmTime:
    def test_same_flops_tall_beats_flat(self):
        gpu = GpuSpec()
        tall = batched_gemm_time(gpu, 1, 16384, 2048, 2048)
        flat = batched_gemm_time(gpu, 2048, 8, 2048, 2048)
        assert flat > 5 * tall

    def test_figure7_slowdown_magnitude(self):
        # DeepSpeed fflayer: 11.3x slowdown from 1 GPU to 2048 GPUs.
        gpu = GpuSpec()
        single = expert_ffn_time(gpu, 1, 16384, 2048, 2048)
        scaled = expert_ffn_time(gpu, 2048, 8, 2048, 2048)
        assert 6 < scaled / single < 20

    def test_launch_overhead_floor(self):
        gpu = GpuSpec()
        assert batched_gemm_time(gpu, 1, 1, 1, 1) >= \
            gpu.kernel_launch_overhead

    def test_linear_in_batch(self):
        gpu = GpuSpec()
        one = batched_gemm_time(gpu, 1, 512, 1024, 1024)
        four = batched_gemm_time(gpu, 4, 512, 1024, 1024)
        math_one = one - gpu.kernel_launch_overhead
        math_four = four - gpu.kernel_launch_overhead
        assert math_four == pytest.approx(4 * math_one)

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            batched_gemm_time(GpuSpec(), 1, 0, 128, 128)


class TestExpertFfnTime:
    def test_two_gemms(self):
        gpu = GpuSpec()
        ffn = expert_ffn_time(gpu, 1, 1024, 512, 2048)
        g1 = batched_gemm_time(gpu, 1, 1024, 512, 2048)
        g2 = batched_gemm_time(gpu, 1, 1024, 2048, 512)
        assert ffn == pytest.approx(g1 + g2)

    def test_backward_is_3x(self):
        gpu = GpuSpec()
        fwd = expert_ffn_time(gpu, 2, 256, 512, 2048)
        bwd = expert_ffn_time(gpu, 2, 256, 512, 2048, backward=True)
        assert bwd == pytest.approx(3 * fwd)
