"""Tests for the routing-provenance subsystem (``repro.obs.routing``).

Load-bearing properties:

* **conservation** — the hop ledger partitions every dispatched
  (post-drop) slot, so intra-GPU + intra-node + inter-node hops equal
  the profile's total exactly, under every placement and both
  substrate dtypes;
* **simulator agreement** — the analytic inter-node pricing equals the
  cluster simulator's makespan for the same message set, on plain and
  calibrated topologies, for multiple placements;
* **determinism** — the synthetic ``--fast`` profile is bit-identical
  for a fixed seed (the contract that lets ``BENCH_routing.json`` gate
  at tolerance 0);
* the run-registry event round-trip reconstructs the recorder's exact
  integer counts.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.gemm import GemmModel
from repro.cluster.simulator import simulate
from repro.cluster.topology import ndv4_topology
from repro.core.substrate import substrate_dtype
from repro.moe.gating import RoutingCriteria, compute_locations
from repro.obs.calibrate import CalibratedTopology
from repro.obs.routing import (
    ROUTING_SCHEMA,
    SRC_BUCKETS,
    RoutingRecorder,
    candidate_placements,
    dispatch_schedule,
    hop_ledger,
    profile_from_events,
    routing_metrics,
    synthetic_profile,
    whatif_placements,
)
from repro.parallel.placement import (
    ExpertPlacement,
    build_placement,
    round_robin_placement,
)


class _StubRun:
    """Collects emitted events after a JSON round-trip, exactly as the
    registry would replay them."""

    def __init__(self):
        self.events = []

    def emit(self, kind, step=None, data=None):
        self.events.append(json.loads(json.dumps(
            {"kind": kind, "step": step, "data": data})))


def _uniform_crits(num_layers=2, num_experts=4, tokens=32, top_k=2,
                   capacity=1000):
    """Round-robin routing with ample capacity: zero drops."""
    crits = []
    for li in range(num_layers):
        idxs = np.stack([(np.arange(tokens) + li + slot) % num_experts
                         for slot in range(top_k)])
        locations = compute_locations(idxs, num_experts)
        crits.append(RoutingCriteria(
            idxs=idxs, locations=locations,
            gates=np.ones_like(idxs, dtype=np.float64),
            capacity=capacity, num_experts=num_experts))
    return crits


class TestRecorder:
    def test_loads_match_bincount_and_count_drops(self):
        rec = RoutingRecorder(2, 4)
        crits = _uniform_crits()
        rec.observe_batch(crits)
        for li, crit in enumerate(crits):
            expected = np.bincount(crit.idxs.reshape(-1), minlength=4)
            assert (rec.loads[li] == expected).all()
        # Ample capacity: every slot survives into `dispatched`.
        assert rec.dispatched.sum() == rec.loads.sum()

    def test_transition_rows_sum_to_tokens(self):
        rec = RoutingRecorder(3, 4)
        rec.observe_batch(_uniform_crits(num_layers=3, tokens=32))
        # One primary-route transition per token per layer pair.
        assert rec.transitions.shape == (2, 4, 4)
        assert (rec.transitions.sum(axis=(1, 2)) == 32).all()

    def test_dropped_slots_excluded_from_dispatch(self):
        # Everyone wants expert 0, capacity 5: 5 survivors per layer.
        tokens, cap = 16, 5
        idxs = np.zeros((1, tokens), dtype=np.int64)
        locations = compute_locations(idxs, 4)
        crit = RoutingCriteria(idxs=idxs, locations=locations,
                               gates=np.ones_like(idxs, dtype=float),
                               capacity=cap, num_experts=4)
        rec = RoutingRecorder(1, 4)
        rec.observe_batch([crit])
        assert rec.loads[0, 0] == tokens
        assert rec.dispatched.sum() == cap

    def test_layer_count_mismatch_rejected(self):
        rec = RoutingRecorder(2, 4)
        with pytest.raises(ValueError, match="layer criteria"):
            rec.observe_batch(_uniform_crits(num_layers=3))

    def test_event_round_trip_reconstructs_counts(self):
        rec = RoutingRecorder(2, 4)
        run = _StubRun()
        for step in range(3):
            rec.observe_batch(_uniform_crits(tokens=32))
            rec.emit(run, step=step)
        assert [e["kind"] for e in run.events[-2:]] == \
            ["routing_load", "routing_affinity"]
        assert all(e["data"]["schema"] == ROUTING_SCHEMA
                   for e in run.events)
        profile = profile_from_events(run.events)
        direct = rec.profile()
        assert profile.tokens == direct.tokens == 96
        assert profile.batches == 3
        assert (profile.loads == direct.loads).all()
        assert (profile.dispatched == direct.dispatched).all()
        assert (profile.transitions == direct.transitions).all()

    def test_events_carry_running_totals_so_prefix_is_consistent(self):
        rec = RoutingRecorder(2, 4)
        run = _StubRun()
        rec.observe_batch(_uniform_crits())
        rec.emit(run, step=0)
        rec.observe_batch(_uniform_crits())
        rec.emit(run, step=1)
        prefix = profile_from_events(run.events[:2])
        assert prefix.batches == 1
        assert prefix.tokens * 2 == profile_from_events(run.events).tokens

    def test_unknown_schema_rejected(self):
        events = [{"kind": "routing_load", "data": {"schema": 99}}]
        with pytest.raises(ValueError, match="schema"):
            profile_from_events(events)

    def test_stream_without_routing_events_rejected(self):
        with pytest.raises(ValueError, match="no routing_load"):
            profile_from_events([{"kind": "step", "data": {}}])


class TestHopConservation:
    """intra_gpu + intra_node + inter_node == total dispatched,
    exactly, for every placement family."""

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("name,placement,topo", [
        ("contiguous", build_placement(4, 2),
         ndv4_topology(4, gpus_per_node=2)),
        ("round_robin", round_robin_placement(4, 8),
         ndv4_topology(4, gpus_per_node=2)),
        ("sharded", build_placement(16, -2),
         ndv4_topology(16, gpus_per_node=8)),
        ("single_gpu", build_placement(1, 8),
         ndv4_topology(1, gpus_per_node=1)),
    ])
    def test_synthetic_traffic_conserves(self, seed, name, placement,
                                         topo):
        profile = synthetic_profile(seed, steps=2)
        led = hop_ledger(profile, placement, topo, bytes_per_token=128,
                         name=name)
        assert led.total_hops == profile.total_dispatched
        assert led.conserves(profile.total_dispatched)
        # Per-layer rows partition too, and sum to the headline.
        assert sum(sum(row) for row in led.per_layer) == led.total_hops
        for li, (g, n, x) in enumerate(led.per_layer):
            assert g + n + x == int(profile.dispatched[li].sum())

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_real_model_traffic_conserves_both_dtypes(self, dtype):
        from repro.nn.moe import MoE
        from repro.autograd.tensor import Tensor

        with substrate_dtype(dtype):
            rng = np.random.default_rng(0)
            layers = [MoE(32, 64, 8, rng, top_k=2,
                          capacity_factor=1.25) for _ in range(2)]
            rec = RoutingRecorder(2, 8)
            for step in range(3):
                x = Tensor(np.random.default_rng(step)
                           .standard_normal((96, 32)))
                crits = []
                for layer in layers:
                    x, _ = layer.forward(x)
                    crits.append(layer.last_routing_criteria)
                assert all(c is not None for c in crits)
                rec.observe_batch(crits)
        profile = rec.profile()
        assert profile.tokens == 3 * 96
        topo = ndv4_topology(4, gpus_per_node=2)
        for placement in (build_placement(4, 2),
                          round_robin_placement(4, 8)):
            led = hop_ledger(profile, placement, topo,
                             bytes_per_token=32 * np.dtype(dtype).itemsize)
            assert led.conserves(profile.total_dispatched)
            # Integer counts stay exact through either float width.
            total = (np.asarray([led.intra_gpu, led.intra_node,
                                 led.inter_node], dtype=dtype).sum())
            assert float(total) == float(profile.total_dispatched)

    def test_single_node_world_has_no_inter_node_hops(self):
        profile = synthetic_profile(0, steps=1)
        led = hop_ledger(profile, build_placement(4, 2),
                         ndv4_topology(4, gpus_per_node=4),
                         bytes_per_token=128)
        assert led.inter_node == 0
        assert led.priced_seconds == 0.0
        assert led.conserves(profile.total_dispatched)

    def test_world_not_dividing_src_buckets_rejected(self):
        profile = synthetic_profile(0, steps=1)
        # A legal 3-GPU placement of 8 experts; 3 does not divide the
        # 16 recorded source buckets, so pricing must refuse.
        placement = ExpertPlacement(
            num_gpus=3, num_global_experts=8,
            experts_per_gpu=8 / 3, shards_per_expert=1,
            gpu_to_experts=(((0, 0), (1, 0), (2, 0)),
                            ((3, 0), (4, 0), (5, 0)),
                            ((6, 0), (7, 0))))
        assert SRC_BUCKETS % 3 != 0
        with pytest.raises(ValueError, match="source buckets"):
            hop_ledger(profile, placement,
                       ndv4_topology(3, gpus_per_node=3),
                       bytes_per_token=128)

    def test_expert_count_mismatch_rejected(self):
        profile = synthetic_profile(0, steps=1)  # 8 experts
        with pytest.raises(ValueError, match="experts"):
            hop_ledger(profile, build_placement(4, 1),
                       ndv4_topology(4, gpus_per_node=2),
                       bytes_per_token=128)


class TestScorerAgreesWithSimulator:
    """The analytic ledger pricing is exactly the makespan the cluster
    simulator assigns the same per-(src, dst) message set."""

    def _calibrated(self, num_gpus, gpus_per_node):
        base = ndv4_topology(num_gpus, gpus_per_node=gpus_per_node)
        return CalibratedTopology(
            topology=base, gemm=GemmModel(eta_max=1.0, rows_half=32.0),
            kernel_coefficients={}, fit={"source": "test"})

    @pytest.mark.parametrize("placement_fn", [
        lambda: build_placement(4, 2),
        lambda: round_robin_placement(4, 8),
    ])
    def test_priced_seconds_equal_makespan(self, placement_fn):
        profile = synthetic_profile(0, steps=2)
        placement = placement_fn()
        cal = self._calibrated(4, 2)
        topo = cal.at_world(4)
        assert topo.gpus_per_node == 2
        led = hop_ledger(profile, placement, topo, bytes_per_token=128)
        sched = dispatch_schedule(profile, placement, topo,
                                  bytes_per_token=128)
        result = simulate(sched)
        assert led.priced_seconds == pytest.approx(result.makespan,
                                                   rel=1e-12)
        # And the bytes the schedule carries are the ledger's bytes:
        # every op prices message_time(pair_bytes) on the inter link.
        assert led.inter_node_bytes == 128 * led.inter_node

    def test_sharded_placement_agrees_too(self):
        profile = synthetic_profile(1, steps=2)
        placement = build_placement(16, -2)
        topo = self._calibrated(16, 8).at_world(16)
        led = hop_ledger(profile, placement, topo, bytes_per_token=64)
        sched = dispatch_schedule(profile, placement, topo,
                                  bytes_per_token=64)
        assert led.priced_seconds == pytest.approx(
            simulate(sched).makespan, rel=1e-12)

    def test_bottleneck_source_sets_the_price(self):
        profile = synthetic_profile(0, steps=1)
        topo = ndv4_topology(4, gpus_per_node=2)
        led = hop_ledger(profile, build_placement(4, 2), topo,
                         bytes_per_token=128)
        assert led.priced_seconds == max(led.inter_seconds_by_src)
        assert len(led.inter_seconds_by_src) == 4


class TestWhatIfScorer:
    def test_candidates_for_standard_world(self):
        cands = candidate_placements(8, 4)
        assert set(cands) == {"contiguous_x2", "round_robin"}
        assert cands["round_robin"].gpus_of_expert(5) == [1]
        assert cands["contiguous_x2"].gpus_of_expert(5) == [2]

    def test_candidates_include_sharded_when_world_exceeds_experts(self):
        cands = candidate_placements(8, 16)
        assert "sharded_x-2" in cands
        assert cands["sharded_x-2"].shards_per_expert == 2

    def test_no_legal_placement_raises(self):
        with pytest.raises(ValueError, match="no legal placement"):
            candidate_placements(3, 2)

    def test_scores_sorted_cheapest_first_and_conserve(self):
        profile = synthetic_profile(0, steps=2)
        scores = whatif_placements(profile,
                                   ndv4_topology(4, gpus_per_node=2),
                                   bytes_per_token=128)
        assert len(scores) >= 2
        priced = [s.ledger.priced_seconds for s in scores]
        assert priced == sorted(priced)
        for s in scores:
            assert s.ledger.conserves(profile.total_dispatched)
        by_name = {s.name: s for s in scores}
        assert by_name["contiguous_x2"].count_per_node == 2
        assert by_name["round_robin"].count_per_node is None

    def test_affinity_aware_placements_differ(self):
        # The sticky Markov kernel makes round-robin and contiguous
        # genuinely different under the same traffic — the signal a
        # placement solver would optimize.
        profile = synthetic_profile(0)
        scores = whatif_placements(profile,
                                   ndv4_topology(4, gpus_per_node=2),
                                   bytes_per_token=128)
        inter = {s.name: s.ledger.inter_node for s in scores}
        assert inter["round_robin"] != inter["contiguous_x2"]


class TestSyntheticDeterminism:
    def test_same_seed_is_bit_identical(self):
        a = synthetic_profile(0)
        b = synthetic_profile(0)
        assert (a.loads == b.loads).all()
        assert (a.dispatched == b.dispatched).all()
        assert (a.transitions == b.transitions).all()

    def test_metrics_are_bit_identical_across_runs(self):
        topo = ndv4_topology(4, gpus_per_node=2)

        def run():
            profile = synthetic_profile(0)
            scores = whatif_placements(profile, topo,
                                       bytes_per_token=128)
            return [(m.name, m.value)
                    for m in routing_metrics(profile, scores)]

        assert run() == run()

    def test_metrics_all_model_kind_tolerance_zero(self):
        profile = synthetic_profile(0, steps=1)
        scores = whatif_placements(profile,
                                   ndv4_topology(4, gpus_per_node=2),
                                   bytes_per_token=128)
        metrics = routing_metrics(profile, scores)
        names = {m.name for m in metrics}
        assert {"tokens", "load_gini", "self_affinity",
                "round_robin.priced_ms",
                "contiguous_x2.inter_node_hops"} <= names
        for m in metrics:
            assert m.kind == "model"
            assert m.tolerance == 0

    def test_affinity_has_diagonal_mass(self):
        profile = synthetic_profile(0)
        assert profile.self_affinity_fraction() > 0.3
        aff = profile.affinity()
        assert aff.shape == (8, 8)
        assert aff.sum() == profile.tokens * (profile.num_layers - 1)


class TestEngineIntegration:
    def test_trainer_emits_routing_events(self, tmp_path):
        from repro.nn.models import MoEClassifier
        from repro.obs.runs import RunStore, recording_run
        from repro.train.data import ClusteredTokenTask
        from repro.train.trainer import train_model

        task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                  num_classes=4, noise=0.4, seed=0)
        rng = np.random.default_rng(0)
        model = MoEClassifier(input_dim=8, model_dim=32, hidden_dim=64,
                              num_classes=4, num_blocks=2,
                              num_experts=8, rng=rng, top_k=2,
                              capacity_factor=1.25)
        with recording_run(root=tmp_path, run_id="t1",
                           config={"kind": "train"}, seed=0):
            train_model(model, task.sample(256), task.sample(64),
                        steps=3, batch_size=64)
        store = RunStore(tmp_path)
        events = list(store.events("t1"))
        loads = [e for e in events if e["kind"] == "routing_load"]
        affs = [e for e in events if e["kind"] == "routing_affinity"]
        assert len(loads) == 3 and len(affs) == 3
        profile = profile_from_events(events)
        assert profile.batches == 3
        assert profile.tokens == 3 * 64
        assert profile.num_layers == len(model.moe_layers())
        led = hop_ledger(profile, build_placement(4, 2),
                         ndv4_topology(4, gpus_per_node=2),
                         bytes_per_token=128)
        assert led.conserves(profile.total_dispatched)

    def test_serving_engine_emits_routing_events(self, tmp_path,
                                                 monkeypatch):
        from repro.obs.runs import RunStore
        from repro.serve import get_workload, serve_workload

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        result = serve_workload(get_workload("poisson_steady"),
                                fast=True)
        store = RunStore(tmp_path)
        events = list(store.events(store.latest()))
        profile = profile_from_events(events)
        assert profile.batches == len(result.batches)
        # Pre-drop loads must agree with the serving_load accumulation.
        assert profile.loads.tolist() == result.expert_load
        assert profile.num_layers == result.workload.num_layers
        led = hop_ledger(profile, build_placement(4, 2),
                         ndv4_topology(4, gpus_per_node=2),
                         bytes_per_token=128)
        assert led.conserves(profile.total_dispatched)
