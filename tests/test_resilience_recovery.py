"""Tests for strategy re-selection after rank failures and the
end-to-end chaos scenario."""

import numpy as np
import pytest

from repro import obs
from repro.cluster.topology import ndv4_topology
from repro.collectives.schedule import (
    A2AAlgorithm,
    feasible_a2a_algorithms,
)
from repro.core.config import MoEConfig
from repro.obs.trace import TraceRecorder
from repro.resilience import run_chaos
from repro.resilience.recovery import reselect_strategy


def make_cfg(world=16, experts=8):
    return MoEConfig(model_dim=1024, hidden_dim=4096,
                     tokens_per_gpu=4096,
                     experts_per_gpu=experts / world,
                     world_size=world, top_k=2)


class TestFeasibleAlgorithms:
    def test_symmetric_allows_2dh(self):
        topo = ndv4_topology(16)
        assert feasible_a2a_algorithms(topo) == (
            A2AAlgorithm.LINEAR, A2AAlgorithm.TWO_DH)

    def test_asymmetric_linear_only(self):
        topo = ndv4_topology(16)
        assert feasible_a2a_algorithms(topo, symmetric_nodes=False) == (
            A2AAlgorithm.LINEAR,)


class TestDegradedLink:
    def test_bandwidth_scaled(self):
        topo = ndv4_topology(16)
        degraded = topo.with_degraded_inter_link(0.5)
        assert degraded.inter_link.bandwidth == pytest.approx(
            topo.inter_link.bandwidth * 0.5)
        assert degraded.inter_link.latency == topo.inter_link.latency
        assert degraded.intra_link == topo.intra_link

    def test_factor_validation(self):
        topo = ndv4_topology(16)
        with pytest.raises(ValueError):
            topo.with_degraded_inter_link(0.0)
        with pytest.raises(ValueError):
            topo.with_degraded_inter_link(1.5)


class TestReselectStrategy:
    def test_single_rank_failure(self):
        decision = reselect_strategy(make_cfg(), ndv4_topology(16), [3])
        assert decision.failed_ranks == (3,)
        assert decision.healthy_world == 15
        # Largest multiple of 8 experts that 15 survivors can form.
        assert decision.surviving_world == 8
        assert decision.dropped_healthy == 7
        assert decision.config.world_size == 8
        assert decision.config.num_global_experts == 8
        # Node 0 lost 1 of its 8 ranks -> asymmetric -> no 2DH.
        assert decision.node_asymmetric
        assert decision.cost.a2a_algorithm is A2AAlgorithm.LINEAR
        assert np.isfinite(decision.cost.total_time)
        assert "ranks [3]" in decision.describe()

    def test_whole_node_failure_stays_symmetric(self):
        decision = reselect_strategy(make_cfg(), ndv4_topology(16),
                                     list(range(8, 16)))
        assert decision.healthy_world == 8
        assert decision.surviving_world == 8
        assert not decision.node_asymmetric

    def test_fewer_survivors_than_experts(self):
        # 3 survivors cannot split 8 experts evenly; park one rank.
        decision = reselect_strategy(make_cfg(), ndv4_topology(16),
                                     list(range(13)))
        assert decision.healthy_world == 3
        assert decision.surviving_world == 2
        assert decision.config.experts_per_gpu == pytest.approx(4.0)

    def test_unrecoverable_raises(self):
        with pytest.raises(RuntimeError, match="restore from checkpoint"):
            reselect_strategy(make_cfg(), ndv4_topology(16),
                              list(range(16)))

    def test_link_degradation_raises_cost(self):
        # 31 survivors of 32 re-form a 16-rank group spanning two
        # nodes, so the degraded inter-node fabric is on the critical
        # path of the re-selected strategy.
        cfg, topo = make_cfg(world=32, experts=16), ndv4_topology(32)
        clean = reselect_strategy(cfg, topo, [3])
        degraded = reselect_strategy(cfg, topo, [3],
                                     link_degradation=0.5)
        assert clean.surviving_world == 16
        assert degraded.cost.total_time > clean.cost.total_time

    def test_duplicate_and_unsorted_ranks_normalized(self):
        decision = reselect_strategy(make_cfg(), ndv4_topology(16),
                                     [5, 3, 5])
        assert decision.failed_ranks == (3, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            reselect_strategy(make_cfg(), ndv4_topology(16), [99])
        with pytest.raises(ValueError):
            reselect_strategy(make_cfg(world=8), ndv4_topology(16), [0])

    def test_emits_fault_events(self):
        ob = obs.enable()
        try:
            reselect_strategy(make_cfg(), ndv4_topology(16), [3])
            counters = ob.registry.snapshot()["counters"]
            assert counters["fault.injected"] == 1
            assert counters["fault.recovered"] == 1
            recovered = next(e for e in ob.recorder.events
                             if e.name == "recovered")
            assert recovered.args["kind"] == "strategy_reselection"
            assert recovered.args["world"] == 8
        finally:
            obs.disable()


class TestCompoundFault:
    """Rank loss while the inter-node fabric is already degraded
    (a brownout) — the scenario engine's compound-fault path."""

    def test_reselection_feasible_on_doubly_degraded_topology(self):
        cfg, topo = make_cfg(world=32, experts=16), ndv4_topology(32)
        decision = reselect_strategy(cfg, topo, [3],
                                     link_degradation=0.25)
        assert decision.link_degradation == 0.25
        # The decision's topology carries the derated fabric...
        assert decision.topology.inter_link.bandwidth == pytest.approx(
            topo.inter_link.bandwidth * 0.25)
        # ...and the chosen algorithm is feasible on it given the
        # post-loss node asymmetry.
        candidates = feasible_a2a_algorithms(
            decision.topology,
            symmetric_nodes=not decision.node_asymmetric)
        assert decision.cost.a2a_algorithm in candidates
        assert decision.node_asymmetric
        assert decision.cost.a2a_algorithm is A2AAlgorithm.LINEAR
        assert np.isfinite(decision.cost.total_time)

    def test_baseline_includes_the_preexisting_derate(self):
        cfg, topo = make_cfg(world=32, experts=16), ndv4_topology(32)
        clean = reselect_strategy(cfg, topo, [3])
        compound = reselect_strategy(cfg, topo, [3],
                                     link_degradation=0.25)
        # The link was already slow when the rank died, so the
        # baseline selection must be priced on the derated fabric.
        assert (compound.baseline_cost.total_time
                > clean.baseline_cost.total_time)

    def test_slowdown_isolates_the_rank_loss(self):
        """slowdown must not conflate the two faults: it prices the
        lost rank against a baseline that already pays the brownout."""
        cfg, topo = make_cfg(world=32, experts=16), ndv4_topology(32)
        clean = reselect_strategy(cfg, topo, [3])
        compound = reselect_strategy(cfg, topo, [3],
                                     link_degradation=0.25)
        conflated = (compound.cost.total_time
                     / clean.baseline_cost.total_time)
        assert compound.slowdown < conflated
        assert compound.slowdown > 0
        assert "x iteration time" in compound.describe()

    def test_link_degradation_validation(self):
        cfg, topo = make_cfg(), ndv4_topology(16)
        with pytest.raises(ValueError, match="link_degradation"):
            reselect_strategy(cfg, topo, [3], link_degradation=0.0)
        with pytest.raises(ValueError, match="link_degradation"):
            reselect_strategy(cfg, topo, [3], link_degradation=1.5)

    def test_no_derate_default_unchanged(self):
        cfg, topo = make_cfg(), ndv4_topology(16)
        decision = reselect_strategy(cfg, topo, [3])
        assert decision.link_degradation == 1.0
        assert decision.topology.inter_link.bandwidth == pytest.approx(
            topo.inter_link.bandwidth)


class TestChaosEndToEnd:
    @pytest.fixture(scope="class")
    def chaos(self, tmp_path_factory):
        trace = str(tmp_path_factory.mktemp("chaos") / "chaos.jsonl")
        report = run_chaos(seed=0, smoke=True, trace_path=trace)
        return report, trace

    def test_faults_slow_the_simulation(self, chaos):
        report, _ = chaos
        assert np.isfinite(report.faulted_makespan)
        assert report.faulted_makespan > report.fault_free_makespan
        assert report.sim_faults_injected >= 1
        assert report.sim_faults_recovered >= 1

    def test_training_completes_without_nan(self, chaos):
        report, _ = chaos
        assert np.isfinite(report.losses).all()
        assert len(report.losses) == report.train_steps - len(
            report.skipped_steps)
        assert np.isfinite(report.final_train_loss)
        assert 0.0 <= report.final_train_accuracy <= 1.0

    def test_recoveries_counted(self, chaos):
        report, _ = chaos
        assert report.counters["fault.recovered"] > 0
        assert report.counters["fault.injected"] >= 3
        assert report.counters["train.step_skipped"] == 1
        assert report.counters["ckpt.saved"] >= 2
        assert report.recovery.surviving_world >= 1

    def test_events_attributed_to_steps(self, chaos):
        """The injected expert failure and the non-finite poisoning
        must land on their scheduled steps, and the skipped step must
        be exactly the poisoned one."""
        report, trace = chaos
        steps = report.train_steps  # 12 in smoke mode
        expert_fail_step = max(1, steps // 3)
        nonfinite_step = max(expert_fail_step + 1, 2 * steps // 3)
        assert report.skipped_steps == [nonfinite_step]

        events = TraceRecorder.load_jsonl(trace).events
        injected = [e for e in events
                    if e.cat == "fault" and e.name == "injected"]
        kinds = {e.args.get("kind") for e in injected}
        assert {"expert_failure", "nonfinite_injection"} <= kinds
        by_kind = {e.args["kind"]: e for e in injected
                   if "kind" in e.args}
        assert by_kind["expert_failure"].args["step"] == expert_fail_step
        assert (by_kind["nonfinite_injection"].args["step"]
                == nonfinite_step)

        skipped = [e for e in events if e.name == "step_skipped"]
        assert [e.args["step"] for e in skipped] == [nonfinite_step]
        saved = [e.args["step"] for e in events if e.name == "saved"]
        assert saved == sorted(saved)
        assert all(1 <= s <= steps for s in saved)

    def test_describe_renders(self, chaos):
        report, _ = chaos
        text = report.describe()
        assert "fault-free makespan" in text
        assert "fault.recovered" in text

    def test_deterministic_in_seed(self, chaos):
        report, _ = chaos
        again = run_chaos(seed=0, smoke=True)
        assert again.losses == report.losses
        assert again.faulted_makespan == report.faulted_makespan
        assert again.skipped_steps == report.skipped_steps

    def test_observer_restored(self):
        assert obs.get_observer() is None
        run_chaos(seed=1, smoke=True)
        assert obs.get_observer() is None

    def test_too_few_steps_rejected(self):
        with pytest.raises(ValueError, match="steps"):
            run_chaos(seed=0, steps=3)
