"""Tests for the declarative alert engine (repro.obs.alerts) and the
observability self-overhead ledger (repro.obs.overhead)."""

import pytest

from repro.obs.alerts import (
    ALERTS_FAMILY,
    AlertEngine,
    AlertRule,
    default_rules,
    merge_worst,
    routing_samples,
)
from repro.obs.overhead import (
    OverheadLedger,
    get_ledger,
    measuring_overhead,
    overhead_metrics,
    set_ledger,
)
from repro.obs.prometheus import (
    labeled_name,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.runs import RunStore, RunWriter, set_run


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    set_run(None)
    set_ledger(None)


def run_series(engine, metric, values, registry=None, run=None):
    """Feed one value per tick; return (tick, name, state) tuples."""
    out = []
    for tick, value in enumerate(values):
        for tr in engine.evaluate(tick, {metric: value},
                                  registry=registry, run=run):
            out.append((tick, tr.rule.name, tr.state))
    return out


class TestRuleValidation:
    def test_rejects_bad_op_kind_and_hold(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", metric="m", op="!=")
        with pytest.raises(ValueError):
            AlertRule(name="x", metric="m", kind="delta")
        with pytest.raises(ValueError):
            AlertRule(name="x", metric="m", for_ticks=-1)
        with pytest.raises(ValueError):
            AlertRule(name="", metric="m")

    def test_rejects_duplicate_rule_names(self):
        rule = AlertRule(name="dup", metric="m")
        with pytest.raises(ValueError):
            AlertEngine([rule, AlertRule(name="dup", metric="n")])


class TestFireHoldResolve:
    def test_fires_only_after_hold(self):
        engine = AlertEngine([AlertRule(
            name="hot", metric="m", op=">", threshold=1.0,
            for_ticks=2)])
        got = run_series(engine, "m", [2.0, 2.0, 2.0, 0.5])
        assert got == [(2, "hot", "firing"), (3, "hot", "resolved")]

    def test_blip_shorter_than_hold_never_fires(self):
        engine = AlertEngine([AlertRule(
            name="hot", metric="m", op=">", threshold=1.0,
            for_ticks=2)])
        got = run_series(engine, "m", [2.0, 0.5, 2.0, 0.5, 2.0, 0.5])
        assert got == []

    def test_zero_hold_fires_immediately(self):
        engine = AlertEngine([AlertRule(
            name="hot", metric="m", op=">", threshold=1.0)])
        got = run_series(engine, "m", [2.0])
        assert got == [(0, "hot", "firing")]

    def test_hysteresis_holds_between_bounds(self):
        # Fires above 10; with resolve_threshold 8 it must NOT
        # resolve at 9 (inside the hysteresis band), only below 8.
        engine = AlertEngine([AlertRule(
            name="hot", metric="m", op=">", threshold=10.0,
            resolve_threshold=8.0)])
        got = run_series(engine, "m", [11.0, 9.0, 9.5, 7.0])
        assert got == [(0, "hot", "firing"), (3, "hot", "resolved")]

    def test_without_hysteresis_resolves_at_threshold(self):
        # A rule on "faults.outstanding > 0" must resolve once the
        # count is back to exactly 0 (no strict crossing possible).
        engine = AlertEngine([AlertRule(
            name="faulty", metric="m", op=">", threshold=0.0)])
        got = run_series(engine, "m", [1.0, 1.0, 0.0])
        assert got == [(0, "faulty", "firing"),
                       (2, "faulty", "resolved")]

    def test_missing_sample_holds_state(self):
        engine = AlertEngine([AlertRule(
            name="hot", metric="m", op=">", threshold=1.0)])
        engine.evaluate(0, {"m": 2.0})
        engine.evaluate(1, {})          # sample absent: still firing
        assert engine.firing() == ["hot"]


class TestRateAndAbsent:
    def test_rate_rule_compares_per_tick_delta(self):
        engine = AlertEngine([AlertRule(
            name="spike", metric="m", kind="rate", op=">",
            threshold=5.0)])
        # Deltas: (skip first), +1, +10, +1 → fire at tick 2,
        # resolve at tick 3.
        got = run_series(engine, "m", [0.0, 1.0, 11.0, 12.0])
        assert got == [(2, "spike", "firing"),
                       (3, "spike", "resolved")]

    def test_absent_rule_fires_and_resolves(self):
        engine = AlertEngine([AlertRule(
            name="gone", metric="m", kind="absent", for_ticks=2)])
        out = []
        series = [{"m": 1.0}, {}, {}, {}, {"m": 1.0}]
        for tick, samples in enumerate(series):
            for tr in engine.evaluate(tick, samples):
                out.append((tick, tr.state))
        assert out == [(2, "firing"), (4, "resolved")]

    def test_absent_rule_never_sampled_counts_from_start(self):
        engine = AlertEngine([AlertRule(
            name="gone", metric="m", kind="absent", for_ticks=3)])
        out = []
        for tick in range(4):
            for tr in engine.evaluate(tick, {}):
                out.append((tick, tr.state))
        assert out == [(3, "firing")]


class TestDeterminismAndSinks:
    SERIES = [0.2, 0.2, 2.0, 2.0, 2.0, 0.1, 2.0, 0.1]

    def _run(self):
        engine = AlertEngine([AlertRule(
            name="hot", metric="m", op=">", threshold=1.0,
            for_ticks=1)])
        return run_series(engine, "m", self.SERIES)

    def test_same_inputs_same_transition_sequence(self):
        assert self._run() == self._run()

    def test_transitions_land_in_registry_and_run(self, tmp_path):
        registry = MetricsRegistry()
        run = RunWriter.create(root=tmp_path, run_id="r1", seed=0,
                               config={})
        engine = AlertEngine([AlertRule(
            name="hot", metric="m", op=">", threshold=1.0,
            severity="critical")])
        run_series(engine, "m", [2.0, 0.5, 2.0], registry=registry,
                   run=run)
        run.finalize(summary={})

        gname = labeled_name(ALERTS_FAMILY,
                             {"alertname": "hot",
                              "severity": "critical"})
        assert registry.gauges[gname].value == 1.0
        assert registry.counters["alerts.fired"].value == 2

        events = [e for e in RunStore(tmp_path).events("r1")
                  if e["kind"] == "alert"]
        assert [(e["step"], e["data"]["state"]) for e in events] == [
            (0, "firing"), (1, "resolved"), (2, "firing")]
        assert events[0]["data"]["alertname"] == "hot"
        assert events[0]["data"]["severity"] == "critical"
        assert "[firing]" in events[0]["data"]["message"]

    def test_alerts_family_round_trips_through_prometheus(self):
        registry = MetricsRegistry()
        engine = AlertEngine([
            AlertRule(name="a", metric="m", op=">", threshold=1.0),
            AlertRule(name="b", metric="m", op=">", threshold=1.5,
                      severity="critical"),
        ])
        engine.evaluate(0, {"m": 2.0}, registry=registry)
        text = render_prometheus(registry)
        parsed = parse_prometheus(text)
        fam = parsed["ALERTS"]
        assert fam["type"] == "gauge"
        assert fam["samples"][
            'ALERTS{alertname="a",severity="warn"}'] == 1.0
        assert fam["samples"][
            'ALERTS{alertname="b",severity="critical"}'] == 1.0
        # One shared HELP/TYPE head for the family, not one per set.
        assert text.count("# TYPE ALERTS gauge") == 1


class TestFaultTracking:
    def test_stream_hook_counts_faults_and_recoveries(self):
        engine = AlertEngine(default_rules(recovery_deadline_ticks=2))
        engine.stream_hook({"kind": "fault", "data": {}})
        engine.stream_hook({"kind": "step"})
        assert engine.outstanding_faults == 1
        engine.stream_hook({"kind": "recovery", "data": {}})
        engine.stream_hook({"kind": "recovery", "data": {}})
        assert engine.outstanding_faults == 0  # floored at zero

    def test_recovery_overdue_fires_then_resolves(self):
        engine = AlertEngine(default_rules(recovery_deadline_ticks=2))
        engine.stream_hook({"kind": "fault"})
        out = []
        for tick in range(5):
            if tick == 3:
                engine.stream_hook({"kind": "recovery"})
            for tr in engine.evaluate(tick, {}):
                out.append((tick, tr.rule.name, tr.state))
        assert out == [(2, "recovery_overdue", "firing"),
                       (3, "recovery_overdue", "resolved")]


class TestDefaultRules:
    def test_serving_rules_gated_on_bounds(self):
        base = {r.name for r in default_rules()}
        assert "serving_p99_high" not in base
        assert "serving_goodput_low" not in base
        full = {r.name for r in default_rules(p99_ms=50.0,
                                              min_goodput_rps=100.0)}
        assert {"serving_p99_high", "serving_goodput_low",
                "routing_entropy_floor", "dead_expert",
                "drop_rate_high", "recovery_overdue"} <= full

    def test_dead_expert_detected_from_expert_load(self):
        engine = AlertEngine(default_rules())
        out = []
        for tick in range(6):
            samples = routing_samples(0.9, 0.0, [10, 10, 10, 0])
            for tr in engine.evaluate(tick, samples):
                out.append((tick, tr.rule.name))
        assert out == [(5, "dead_expert")]


class TestRoutingSamples:
    def test_min_expert_share_normalized(self):
        s = routing_samples(0.8, 0.1, [10, 10, 10, 10])
        assert s["routing.min_expert_share"] == pytest.approx(1.0)
        s = routing_samples(None, None, [0, 20, 20, 20])
        assert s["routing.min_expert_share"] == 0.0
        assert "routing.entropy" not in s

    def test_merge_worst_across_layers(self):
        into = {}
        merge_worst(into, {"routing.entropy": 0.9,
                           "routing.dropped_fraction": 0.1,
                           "routing.min_expert_share": 0.8})
        merge_worst(into, {"routing.entropy": 0.4,
                           "routing.dropped_fraction": 0.05,
                           "routing.min_expert_share": 0.9})
        assert into == {"routing.entropy": 0.4,
                        "routing.dropped_fraction": 0.1,
                        "routing.min_expert_share": 0.8}


class TestOverheadLedger:
    def test_accumulates_and_attributes(self):
        led = OverheadLedger()
        led.add("metrics", 100)
        led.add("metrics", 50)
        led.add("events", 25)
        led.observe_step(1000)
        led.observe_step(750)
        assert led.overhead_ns == 175
        assert led.fraction() == pytest.approx(175 / 1750)
        assert led.counts["metrics"] == 2
        assert led.summary()["totals_ns"]["events"] == 25

    def test_fraction_safe_with_no_steps(self):
        assert OverheadLedger().fraction() == 0.0

    def test_measuring_overhead_installs_and_restores(self):
        assert get_ledger() is None
        with measuring_overhead() as led:
            assert get_ledger() is led
        assert get_ledger() is None

    def test_engine_attributes_alert_time_when_measuring(self):
        engine = AlertEngine([AlertRule(name="hot", metric="m",
                                        op=">", threshold=1.0)])
        with measuring_overhead() as led:
            engine.evaluate(0, {"m": 2.0})
        assert led.counts["alerts"] == 1
        assert led.totals["alerts"] > 0

    def test_overhead_metrics_gate_shape(self):
        led = OverheadLedger()
        led.add("trace", 10)
        led.observe_step(1000)
        metrics = {m.name: m for m in overhead_metrics(
            led, {"step": 8, "routing": 16})}
        gated = metrics["overhead_fraction"]
        assert gated.kind == "model"
        assert gated.higher_is_better is False
        assert gated.tolerance == 0.0
        assert metrics["steps"].value == 1.0
        assert metrics["events_routing"].value == 16.0
        assert metrics["trace_ms"].kind == "measured"
