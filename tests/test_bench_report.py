"""Tests for repro.bench.report: BENCH_*.json records and regression."""

import json

import pytest

from repro.bench.report import (
    BenchResult,
    Metric,
    compare,
    config_fingerprint,
    emit,
    has_failures,
    load_results,
    render_comparisons,
    render_report,
    validate_payload,
    write_baselines,
)
from repro.cli import main


def make_result(artifact="fig99", value=10.0, *, scale="default",
                config=None, higher_is_better=True, tolerance=0.05,
                kind="model", metric_name="speedup"):
    return BenchResult(
        artifact=artifact,
        title=f"{artifact} title",
        metrics=[Metric(metric_name, value, "x",
                        kind=kind, higher_is_better=higher_is_better,
                        tolerance=tolerance)],
        scale=scale,
        config=dict(config or {"n": 1}),
    )


class TestMetric:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            Metric("", 1.0, "x")
        with pytest.raises(ValueError):
            Metric("m", float("nan"), "x")
        with pytest.raises(ValueError):
            Metric("m", True, "x")
        with pytest.raises(ValueError):
            Metric("m", 1.0, "x", kind="guessed")
        with pytest.raises(ValueError):
            Metric("m", 1.0, "x", tolerance=-0.1)

    def test_json_roundtrip(self):
        m = Metric("gain", 1.5, "ratio", kind="measured",
                   higher_is_better=False, tolerance=0.2)
        assert Metric.from_json_obj(m.to_json_obj()) == m


class TestBenchResult:
    def test_fingerprint_is_stable_and_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == \
            config_fingerprint({"b": 2, "a": 1})
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})
        assert len(config_fingerprint({})) == 12

    def test_write_load_roundtrip(self, tmp_path):
        r = make_result(config={"world": 64, "factor": 4.0})
        path = r.write(tmp_path)
        assert path.name == "BENCH_fig99.json"
        loaded = BenchResult.load(path)
        assert loaded.artifact == r.artifact
        assert loaded.fingerprint == r.fingerprint
        assert loaded.metric("speedup").value == 10.0

    def test_validate_payload_catches_errors(self, tmp_path):
        good = make_result().to_json_obj()
        assert validate_payload(good) == []
        bad = dict(good, artifact="Not Valid!")
        assert validate_payload(bad)
        bad = dict(good, metrics=[])
        assert validate_payload(bad)
        dup = make_result().to_json_obj()
        dup["metrics"] = dup["metrics"] * 2
        assert any("duplicate" in e for e in validate_payload(dup))
        tampered = dict(good, fingerprint="0" * 12)
        assert any("fingerprint" in e for e in validate_payload(tampered))

    def test_from_json_obj_rejects_invalid(self):
        with pytest.raises(ValueError):
            BenchResult.from_json_obj({"schema": 99})


class TestEmit:
    def test_emit_writes_only_when_directed(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        emit("fig99", "t", [Metric("m", 1.0, "x")])
        assert list(tmp_path.iterdir()) == []
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        emit("fig99", "t", [Metric("m", 1.0, "x")])
        assert (tmp_path / "BENCH_fig99.json").exists()

    def test_emit_respects_scale_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        emit("fig98", "t", [Metric("m", 1.0, "x")])
        loaded = BenchResult.load(tmp_path / "BENCH_fig98.json")
        assert loaded.scale == "smoke"

    def test_emit_always_validates(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        with pytest.raises(ValueError):
            emit("Not Valid!", "t", [Metric("m", 1.0, "x")])

    def test_load_results_aggregates(self, tmp_path):
        make_result("fig97").write(tmp_path)
        make_result("fig96").write(tmp_path)
        results = load_results(tmp_path)
        assert set(results) == {"fig96", "fig97"}
        assert "fig96" in render_report(results)


class TestCompare:
    def test_identical_results_pass(self):
        cur = {"fig99": make_result()}
        base = {"fig99": make_result()}
        comps = compare(cur, base)
        assert [c.status for c in comps] == ["ok"]
        assert not has_failures(comps)

    def test_tolerance_edge(self):
        base = {"fig99": make_result(value=10.0, tolerance=0.05)}
        # 4.9% drop: inside tolerance.
        ok = compare({"fig99": make_result(value=9.51, tolerance=0.05)},
                     base)
        assert ok[0].status == "ok"
        # 6% drop: regression on a higher-is-better metric.
        bad = compare({"fig99": make_result(value=9.4, tolerance=0.05)},
                      base)
        assert bad[0].status == "regressed"
        assert has_failures(bad)
        # 6% rise: improvement, not a failure.
        up = compare({"fig99": make_result(value=10.6, tolerance=0.05)},
                     base)
        assert up[0].status == "improved"
        assert not has_failures(up)

    def test_lower_is_better_mirrored(self):
        base = {"fig99": make_result(value=10.0, higher_is_better=False)}
        bad = compare(
            {"fig99": make_result(value=10.6, higher_is_better=False)},
            base)
        assert bad[0].status == "regressed"

    def test_neutral_metric_fails_both_directions(self):
        base = {"fig99": make_result(value=10.0, higher_is_better=None)}
        for v in (10.6, 9.4):
            comps = compare(
                {"fig99": make_result(value=v, higher_is_better=None)},
                base)
            assert comps[0].status == "regressed"

    def test_missing_artifact_and_metric(self):
        base = {"fig99": make_result(), "fig98": make_result("fig98")}
        comps = compare({"fig99": make_result()}, base)
        statuses = {(c.artifact, c.status) for c in comps}
        assert ("fig98", "missing") in statuses
        assert has_failures(comps)
        # Metric renamed -> old one missing, new one "new".
        cur = {"fig99": make_result(metric_name="renamed")}
        comps = compare(cur, {"fig99": make_result()})
        assert {c.status for c in comps} == {"missing", "new"}

    def test_fingerprint_mismatch(self):
        cur = {"fig99": make_result(config={"n": 2})}
        comps = compare(cur, {"fig99": make_result(config={"n": 1})})
        assert comps[0].status == "fingerprint-mismatch"
        assert has_failures(comps)

    def test_scale_mismatch_skips(self):
        cur = {"fig99": make_result(scale="smoke")}
        comps = compare(cur, {"fig99": make_result()})
        assert comps[0].status == "skipped"
        assert not has_failures(comps)

    def test_measured_metrics_skipped_by_default(self):
        base = {"fig99": make_result(value=10.0, kind="measured")}
        cur = {"fig99": make_result(value=1.0, kind="measured")}
        comps = compare(cur, base)
        assert comps[0].status == "skipped"
        strict = compare(cur, base, include_measured=True)
        assert strict[0].status == "regressed"

    def test_render_comparisons_has_verdict(self):
        comps = compare({"fig99": make_result()},
                        {"fig99": make_result()})
        text = render_comparisons(comps)
        assert "OK" in text
        bad = compare({"fig99": make_result(value=1.0)},
                      {"fig99": make_result(value=10.0)})
        assert "FAIL" in render_comparisons(bad)


class TestCliVerbs:
    def _seed_dirs(self, tmp_path, *, perturb=False):
        bench = tmp_path / "bench"
        baselines = tmp_path / "baselines"
        bench.mkdir()
        make_result(value=10.0).write(bench)
        write_baselines(
            {"fig99": make_result(value=20.0 if perturb else 10.0)},
            baselines)
        return bench, baselines

    def test_report_prints_aggregate(self, tmp_path, capsys):
        bench, _ = self._seed_dirs(tmp_path)
        assert main(["report", "--bench-dir", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "fig99" in out

    def test_regress_passes_on_match(self, tmp_path, capsys):
        bench, baselines = self._seed_dirs(tmp_path)
        code = main(["regress", "--bench-dir", str(bench),
                     "--baselines", str(baselines)])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_regress_fails_on_perturbed_baseline(self, tmp_path, capsys):
        bench, baselines = self._seed_dirs(tmp_path, perturb=True)
        code = main(["regress", "--bench-dir", str(bench),
                     "--baselines", str(baselines)])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_report_write_baselines_roundtrips(self, tmp_path):
        bench, _ = self._seed_dirs(tmp_path)
        out = tmp_path / "new-baselines"
        assert main(["report", "--bench-dir", str(bench),
                     "--write-baselines", str(out)]) == 0
        data = json.loads((out / "BENCH_fig99.json").read_text())
        assert validate_payload(data) == []


class TestCommittedBaselines:
    def test_repo_baselines_are_valid(self):
        from pathlib import Path

        from repro.cli import _default_baselines_dir
        directory = Path(_default_baselines_dir())
        assert directory.is_dir()
        results = load_results(directory)
        assert "fig22" in results
        for artifact, result in results.items():
            payload = json.loads(
                (directory / result.filename).read_text())
            assert validate_payload(payload) == [], artifact
