"""Tests for the bench-harness helpers."""

import pytest

from repro.bench.harness import Table, format_speedup, geometric_mean


class TestTable:
    def test_render_contains_rows(self):
        t = Table("Paper Table X", ["a", "b"])
        t.add_row(1, "two")
        text = t.render()
        assert "Paper Table X" in text
        assert "two" in text

    def test_alignment(self):
        t = Table("T", ["col", "x"])
        t.add_row("longvalue", 1)
        lines = t.render().splitlines()
        assert lines[1].startswith("col")
        assert "longvalue" in lines[3]

    def test_rule_spans_widest_line(self):
        # A title longer than any row used to leave the rule undersized.
        t = Table("A very long descriptive table title indeed", ["a"])
        t.add_row("x")
        lines = t.render().splitlines()
        rule = lines[2]
        assert set(rule) == {"-"}
        assert len(rule) == max(len(line) for line in lines)

    def test_rule_spans_wide_rows(self):
        t = Table("T", ["a", "b"])
        t.add_row("a-much-wider-cell-than-the-header", "x")
        lines = t.render().splitlines()
        assert len(lines[2]) == max(len(line) for line in lines)

    def test_no_trailing_whitespace(self):
        t = Table("T", ["col", "other"])
        t.add_row("v", "w")
        for line in t.render().splitlines():
            assert line == line.rstrip()

    def test_rejects_wrong_arity(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)


class TestHelpers:
    def test_format_speedup(self):
        assert format_speedup(1.5) == "1.50x"

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
