"""Tests for dynamic sparsity schedules (Section 4.1 feature)."""

import numpy as np
import pytest

from repro.nn.models import MoEClassifier
from repro.train.data import ClusteredTokenTask
from repro.train.schedules import (
    ConstantSchedule,
    CosineSchedule,
    LinearSchedule,
    StepSchedule,
    apply_sparsity_schedules,
)
from repro.train.trainer import train_model


class TestScheduleShapes:
    def test_constant(self):
        s = ConstantSchedule(2.0)
        assert s(0) == s(1000) == 2.0

    def test_step(self):
        s = StepSchedule(values=(2, 1), milestones=(100,))
        assert s(0) == 2
        assert s(99) == 2
        assert s(100) == 1

    def test_step_validation(self):
        with pytest.raises(ValueError):
            StepSchedule(values=(2,), milestones=(10,))
        with pytest.raises(ValueError):
            StepSchedule(values=(3, 2, 1), milestones=(20, 10))

    def test_linear_endpoints(self):
        s = LinearSchedule(start=4.0, end=1.0, steps=100)
        assert s(0) == 4.0
        assert s(100) == 1.0
        assert s(50) == pytest.approx(2.5)
        assert s(1000) == 1.0  # clamps past the horizon

    def test_cosine_endpoints_and_monotone(self):
        s = CosineSchedule(start=2.0, end=1.0, steps=50)
        values = [s(i) for i in range(51)]
        assert values[0] == pytest.approx(2.0)
        assert values[-1] == pytest.approx(1.0)
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            LinearSchedule(1, 2, 0)
        with pytest.raises(ValueError):
            CosineSchedule(1, 2, 0)


class TestApplyToModel:
    @pytest.fixture
    def model(self):
        return MoEClassifier(8, 16, 32, 4, num_blocks=2, num_experts=4,
                             rng=np.random.default_rng(0), top_k=2)

    def test_top_k_applied_and_clamped(self, model):
        apply_sparsity_schedules(model, 0,
                                 top_k=ConstantSchedule(9))
        assert all(layer.top_k == 4 for layer in model.moe_layers())
        apply_sparsity_schedules(model, 0,
                                 top_k=ConstantSchedule(0.2))
        assert all(layer.top_k == 1 for layer in model.moe_layers())

    def test_capacity_applied(self, model):
        apply_sparsity_schedules(model, 0,
                                 capacity_factor=ConstantSchedule(-2.0))
        for layer in model.moe_layers():
            assert layer.capacity_policy.upper_bound == 2.0

    def test_noop_on_dense_model(self):
        from repro.nn.models import DenseClassifier
        dense = DenseClassifier(8, 16, 32, 4, num_blocks=1,
                                rng=np.random.default_rng(0))
        apply_sparsity_schedules(dense, 0, top_k=ConstantSchedule(1))


class TestTrainingWithSchedules:
    def test_annealed_k_trains(self):
        task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                  num_classes=4, seed=0)
        train = task.sample(1024)
        test = task.sample(512)
        model = MoEClassifier(8, 16, 32, 4, num_blocks=2,
                              num_experts=8,
                              rng=np.random.default_rng(0), top_k=2)
        result = train_model(
            model, train, test, steps=40, seed=0,
            top_k_schedule=StepSchedule(values=(2, 1),
                                        milestones=(20,)),
            capacity_schedule=LinearSchedule(2.0, 1.0, 40))
        # After the milestone every layer routes top-1.
        assert all(layer.top_k == 1 for layer in model.moe_layers())
        assert result.eval_accuracy > 0.2
        # Capacity annealed down toward 1.0 (last applied step is 39).
        for layer in model.moe_layers():
            assert layer.capacity_policy.capacity_factor == \
                pytest.approx(1.025)
