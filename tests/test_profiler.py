"""Closed-form FLOP/byte reference tests for the op-level profiler.

The profiler's counts are analytic, so these tests assert *exact*
equality against the textbook formulas (GEMM ``2*m*n*k`` forward /
``4*m*n*k`` backward, sparse encode ``O(T*k*M)`` vs the dense
``O(T*E*C*M)`` dispatch), plus the allocation-ledger invariants and a
peak-memory regression bound against the committed baseline.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.autograd.moe_ops import moe_combine, moe_dispatch
from repro.autograd.tensor import Tensor
from repro.moe.gating import RoutingCriteria, compute_locations
from repro.core.substrate import substrate_dtype
from repro.obs import profiler
from repro.obs.profiler import (
    MOE_STAGES,
    AllocationLedger,
    Profiler,
    dense_encode_flops,
    elementwise_cost,
    gemm_flops,
    matmul_cost,
    profiling,
    routes_of,
    sparse_decode_cost,
    sparse_encode_cost,
)

BASELINES = Path(__file__).resolve().parents[1] / "benchmarks/baselines"


def seeded_routing(t=64, e=8, k=2, capacity=16, seed=0):
    rng = np.random.default_rng(seed)
    order = np.argsort(rng.random((t, e)), axis=1)[:, :k]
    idxs = np.ascontiguousarray(order.T)
    locations = compute_locations(idxs, e)
    gates = np.full((k, t), 1.0 / k)
    return RoutingCriteria(idxs=idxs, locations=locations, gates=gates,
                           capacity=capacity, num_experts=e)


class TestGemmReference:
    # The byte ledger must be exact at both supported itemsizes — the
    # float64 monoculture used to report 2x the true bytes under
    # float32 (closed-form pin of both conventions).
    @pytest.mark.parametrize("dtype,isz", [(np.float32, 4),
                                           (np.float64, 8)])
    def test_forward_flops_are_2mnk(self, dtype, isz):
        m, k, n = 16, 24, 32
        rng = np.random.default_rng(0)
        with substrate_dtype(dtype), profiling() as prof:
            out = Tensor(rng.standard_normal((m, k))) @ \
                Tensor(rng.standard_normal((k, n)))
            del out
        (rec,) = [r for r in prof.records if r.name == "matmul"]
        assert rec.cost.flops == gemm_flops(m, n, k) == 2 * m * n * k
        assert rec.cost.bytes_read == (m * k + k * n) * isz
        assert rec.cost.bytes_written == m * n * isz

    @pytest.mark.parametrize("isz", [4, 8])
    def test_cost_helpers_scale_with_itemsize(self, isz):
        m, k, n = 8, 12, 10
        fwd, bwd = matmul_cost((m, k), (k, n), (m, n), itemsize=isz)
        assert fwd.bytes_read == (m * k + k * n) * isz
        assert fwd.bytes_written == m * n * isz
        assert bwd.bytes_read == (m * n + m * k + k * n) * isz
        assert bwd.bytes_written == (m * k + k * n) * isz
        e_fwd, e_bwd = elementwise_cost("gelu", 100, 1, itemsize=isz)
        assert e_fwd.bytes_read == 100 * isz
        assert e_fwd.bytes_written == 100 * isz
        assert e_bwd.bytes_written == 100 * isz

    def test_default_itemsize_follows_substrate(self):
        with substrate_dtype(np.float32):
            assert profiler.default_itemsize() == 4
            assert matmul_cost((2, 2), (2, 2), (2, 2))[0].bytes_written \
                == 4 * 4
        with substrate_dtype(np.float64):
            assert profiler.default_itemsize() == 8
            assert matmul_cost((2, 2), (2, 2), (2, 2))[0].bytes_written \
                == 4 * 8

    def test_backward_flops_are_4mnk(self):
        m, k, n = 8, 12, 10
        rng = np.random.default_rng(1)
        with profiling() as prof:
            a = Tensor(rng.standard_normal((m, k)), requires_grad=True)
            b = Tensor(rng.standard_normal((k, n)), requires_grad=True)
            (a @ b).sum().backward()
        (bwd,) = [r for r in prof.records
                  if r.name == "matmul" and r.phase == "backward"]
        assert bwd.cost.flops == 4 * m * n * k

    def test_totals_sum_fwd_and_bwd(self):
        m, k, n = 8, 8, 8
        rng = np.random.default_rng(2)
        with profiling() as prof:
            a = Tensor(rng.standard_normal((m, k)), requires_grad=True)
            b = Tensor(rng.standard_normal((k, n)), requires_grad=True)
            (a @ b).sum().backward()
        by_op = prof.by_op()
        assert by_op["matmul"]["flops"] == 2 * m * n * k + 4 * m * n * k


class TestSparseKernelReference:
    def test_dispatch_matches_sparse_encode_cost(self):
        crit = seeded_routing()
        x = Tensor(np.random.default_rng(3).standard_normal((64, 32)))
        with profiling() as prof:
            out = moe_dispatch(x, crit)
            del out
        (rec,) = [r for r in prof.records if r.name == "moe_dispatch"]
        expected = sparse_encode_cost(routes_of(crit),
                                      crit.num_experts * crit.capacity,
                                      32)
        assert rec.cost == expected
        assert rec.cost.flops == 0.0  # pure data movement

    def test_combine_matches_sparse_decode_cost(self):
        crit = seeded_routing()
        rng = np.random.default_rng(4)
        z = Tensor(rng.standard_normal(
            (crit.num_experts, crit.capacity, 32)))
        gates = Tensor(crit.gates.copy())
        with profiling() as prof:
            out = moe_combine(z, gates, crit)
            del out
        (rec,) = [r for r in prof.records if r.name == "moe_combine"]
        r = routes_of(crit)
        assert rec.cost == sparse_decode_cost(r, crit.num_tokens, 32)
        assert rec.cost.flops == 2.0 * r * 32

    def test_dense_vs_sparse_gap(self):
        # Figure 24's point: dense dispatch does O(T*E*C*M) work while
        # the sparse kernel moves only the O(T*k*M) live routes.
        t, e, k, c, m = 1024, 64, 2, 32, 128
        crit = seeded_routing(t=t, e=e, k=k, capacity=c)
        dense = dense_encode_flops(t, e, c, m)
        sparse_elems = routes_of(crit) * m
        assert dense == 2.0 * t * e * c * m
        # routes <= k*T, so the useful-work gap is >= E*C / (2*k)
        assert dense / (2.0 * sparse_elems) >= e * c / (2.0 * k)


class TestLedger:
    def test_peak_and_live_accounting(self):
        led = AllocationLedger()
        led.retain(1, 100, 0.0, "forward", "other", "data")
        led.retain(2, 50, 0.0, "forward", "other", "data")
        led.release(1, 0.0, "forward", "other", "data")
        assert led.peak_bytes == 150
        assert led.live_bytes == 50
        assert [e.delta for e in led.events] == [100, 50, -100]

    def test_shared_array_counted_once(self):
        led = AllocationLedger()
        led.retain(7, 64, 0.0, "forward", "other", "data")
        led.retain(7, 64, 0.0, "forward", "other", "grad")
        assert led.live_bytes == 64
        led.release(7, 0.0, "forward", "other", "data")
        assert led.live_bytes == 64  # one ref still held
        led.release(7, 0.0, "forward", "other", "grad")
        assert led.live_bytes == 0

    def test_timeline_keeps_peak(self):
        led = AllocationLedger()
        for i in range(500):
            led.retain(i, 1, 0.0, "forward", "other", "data")
            led.release(i, 0.0, "forward", "other", "data")
        led.retain(1000, 10, 0.0, "backward", "other", "grad")
        led.release(1000, 0.0, "backward", "other", "grad")
        rows = led.timeline(max_points=16)
        assert len(rows) <= 20
        assert max(r[1] for r in rows) == led.peak_bytes

    def test_frees_recorded_when_graph_dropped(self):
        rng = np.random.default_rng(5)
        with profiling() as prof:
            a = Tensor(rng.standard_normal((32, 32)),
                       requires_grad=True)
            loss = (a @ a).sum()
            loss.backward()
            peak_live = prof.ledger.live_bytes
            del loss
        assert prof.ledger.live_bytes < peak_live
        assert any(e.delta < 0 for e in prof.ledger.events)


class TestProfilerEndToEnd:
    def _profile_step(self):
        from repro.autograd.functional import cross_entropy
        from repro.nn.models import MoEClassifier
        from repro.train.data import ClusteredTokenTask

        task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                  num_classes=4, noise=0.4, seed=0)
        model = MoEClassifier(
            input_dim=8, model_dim=32, hidden_dim=64, num_classes=4,
            num_blocks=2, num_experts=8,
            rng=np.random.default_rng(0), top_k=2,
            capacity_factor=1.25)
        batch = task.sample(128)
        prof = Profiler()
        with profiling(prof):
            logits, l_aux = model(Tensor(batch.x))
            loss = cross_entropy(logits, batch.y) + l_aux * 0.01
            loss.backward()
            del logits, l_aux, loss
        return prof

    def test_moe_stages_attributed(self):
        prof = self._profile_step()
        stages = set(prof.by_stage())
        assert set(MOE_STAGES) <= stages

    def test_deterministic_counts(self):
        a, b = self._profile_step(), self._profile_step()
        assert a.totals()["flops"] == b.totals()["flops"]
        assert a.totals()["ops"] == b.totals()["ops"]
        assert a.ledger.peak_bytes == b.ledger.peak_bytes

    def test_matches_committed_baseline(self):
        baseline = json.loads(
            (BASELINES / "BENCH_profile_step.json").read_text())
        values = {m["name"]: m["value"] for m in baseline["metrics"]}
        prof = self._profile_step()
        totals = prof.totals()
        # Model-derived counts are exact; peak memory gets the ±10%
        # regression band of the committed tolerance.
        assert totals["flops"] == values["total_flops"]
        assert totals["ops"] == values["num_ops"]
        assert prof.ledger.peak_bytes == pytest.approx(
            values["peak_bytes"], rel=0.10)

    def test_summary_json_serializable(self):
        prof = self._profile_step()
        payload = json.loads(json.dumps(prof.summary()))
        assert payload["schema_version"] == 1
        assert payload["totals"]["flops"] > 0
        assert payload["peak_bytes"] > 0
        assert payload["alloc_timeline"]

    def test_disabled_profiler_records_nothing(self):
        assert profiler.active() is None
        rng = np.random.default_rng(6)
        out = Tensor(rng.standard_normal((4, 4))) @ \
            Tensor(rng.standard_normal((4, 4)))
        assert out.shape == (4, 4)
        assert profiler.active() is None
