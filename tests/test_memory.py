"""Tests for the Table 4 memory accounting model."""

import pytest

from repro.cluster.memory import (
    MemoryBreakdown,
    dense_moe_memory,
    sparse_moe_memory,
)
from repro.core.config import MoEConfig
from repro.core.units import GIB


def table4_config(tokens: int) -> MoEConfig:
    """Table 4 static settings: M = V = 4096, top-k = 2, dE = 2."""
    return MoEConfig(world_size=1, experts_per_gpu=2, model_dim=4096,
                     hidden_dim=4096, tokens_per_gpu=tokens, top_k=2,
                     capacity_factor=1.0)


class TestMemoryBreakdown:
    def test_add_and_total(self):
        b = MemoryBreakdown(base_bytes=10, allocator_overhead=1.0)
        b.add("x", 5)
        b.add("x", 5)
        assert b.tensors["x"] == 10
        assert b.total_bytes == 20

    def test_top_sorted(self):
        b = MemoryBreakdown()
        b.add("small", 1)
        b.add("big", 100)
        assert b.top(1)[0][0] == "big"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MemoryBreakdown().add("bad", -1)


class TestTable4Shape:
    def test_dense_grows_superlinearly(self):
        m1 = dense_moe_memory(table4_config(4096)).total_bytes
        m2 = dense_moe_memory(table4_config(8192)).total_bytes
        m3 = dense_moe_memory(table4_config(16384)).total_bytes
        m4 = dense_moe_memory(table4_config(32768)).total_bytes
        # Growth ratio approaches 4x per token doubling (quadratic).
        assert (m4 - m3) / (m3 - m2) > 2.5
        assert m4 / m1 > 10

    def test_sparse_grows_sublinearly(self):
        s1 = sparse_moe_memory(table4_config(4096)).total_bytes
        s4 = sparse_moe_memory(table4_config(32768)).total_bytes
        assert s4 / s1 < 3.0

    @pytest.mark.parametrize("tokens,paper_saving", [
        (4096, 0.216), (8192, 0.484), (16384, 0.755), (32768, 0.902)])
    def test_savings_match_paper_band(self, tokens, paper_saving):
        cfg = table4_config(tokens)
        dense = dense_moe_memory(cfg).total_bytes
        sparse = sparse_moe_memory(cfg).total_bytes
        saving = 1.0 - sparse / dense
        assert abs(saving - paper_saving) < 0.15

    @pytest.mark.parametrize("tokens,paper_gib", [
        (4096, 3.7), (8192, 6.2), (16384, 16.3), (32768, 57.9)])
    def test_dense_totals_within_factor_two(self, tokens, paper_gib):
        measured = dense_moe_memory(table4_config(tokens)).total_bytes / GIB
        assert paper_gib / 2 < measured < paper_gib * 2

    def test_sparse_has_no_quadratic_tensor(self):
        cfg = table4_config(32768)
        breakdown = sparse_moe_memory(cfg)
        quadratic = (cfg.tokens_per_gpu * cfg.num_global_experts
                     * cfg.capacity_per_gpu)
        assert all(nbytes < quadratic
                   for nbytes in breakdown.tensors.values())

    def test_dense_largest_tensor_is_combine_weights(self):
        top_name = dense_moe_memory(table4_config(32768)).top(1)[0][0]
        assert "T,E,dC" in top_name

    def test_params_identical_across_paths(self):
        cfg = table4_config(8192)
        d = dense_moe_memory(cfg).tensors["params+optimizer"]
        s = sparse_moe_memory(cfg).tensors["params+optimizer"]
        assert d == s
