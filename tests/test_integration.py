"""Cross-module integration tests: whole data paths end to end."""

import numpy as np

from repro.cluster.topology import ndv4_topology
from repro.collectives.functional import (
    all_to_all_2dh,
    all_to_all_linear,
)
from repro.core.config import MoEConfig
from repro.moe.capacity import CapacityPolicy
from repro.moe.distributed import distributed_moe_forward, shard_experts
from repro.moe.encode import fast_encode
from repro.moe.gating import softmax, top_k_routing
from repro.moe.layer import MoELayerParams, expert_ffn, moe_layer_forward
from repro.pipeline.partition import merge_partitions, partition_capacity
from repro.runtime.plan import TUTEL_FEATURES, moe_step_time


class TestDispatchOver2DH:
    """The MoE dispatch exchanged via 2DH must equal the linear path,
    end to end through expert computation."""

    def test_moe_dispatch_via_2dh_matches_linear(self):
        rng = np.random.default_rng(0)
        w, e, m = 8, 8, 16
        cfg = MoEConfig(world_size=w, experts_per_gpu=1, model_dim=m,
                        hidden_dim=32, tokens_per_gpu=32, top_k=1,
                        capacity_factor=8.0)
        params = MoELayerParams.init(num_experts=e, model_dim=m,
                                     hidden_dim=32, rng=rng, top_k=1)
        # Per-rank dispatch buffers reshaped to per-destination chunks.
        dispatch = []
        for r in range(w):
            x = rng.normal(size=(32, m))
            probs = softmax(x @ params.gate_weight)
            crit = top_k_routing(probs, 1, cfg.capacity_per_gpu)
            buf = fast_encode(x, crit)            # (E, dC, M)
            dispatch.append(buf.reshape(w, -1))   # one chunk per dest
        linear = all_to_all_linear(dispatch)
        hier = all_to_all_2dh(dispatch, gpus_per_node=4)
        for r in range(w):
            np.testing.assert_allclose(hier[r], linear[r])


class TestPipelinedDistributedLayer:
    """Chunked (pipelined) expert execution inside the distributed
    layer produces identical results to monolithic execution."""

    def test_chunked_expert_equals_monolithic(self):
        rng = np.random.default_rng(1)
        cfg = MoEConfig(world_size=4, experts_per_gpu=2, model_dim=16,
                        hidden_dim=32, tokens_per_gpu=16, top_k=2,
                        capacity_factor=8.0)
        params = MoELayerParams.init(num_experts=8, model_dim=16,
                                     hidden_dim=32, rng=rng)
        xs = [rng.normal(size=(16, 16)) for _ in range(4)]
        reference = distributed_moe_forward(xs, params, cfg)

        # Re-run with the expert stage manually chunked (degree 4)
        # along the capacity dimension, as adaptive pipelining does.
        from repro.collectives.functional import flexible_all_to_all
        from repro.moe.encode import fast_decode

        crits, dispatch = [], []
        for x in xs:
            probs = softmax(x @ params.gate_weight)
            crit = top_k_routing(probs, 2, cfg.capacity_per_gpu)
            crits.append(crit)
            dispatch.append(fast_encode(x, crit))
        expert_in = flexible_all_to_all(dispatch, 1, 0)
        locals_ = shard_experts(params.experts, 4)
        expert_out = []
        for r in range(4):
            parts = partition_capacity(expert_in[r], 4)
            outs = [expert_ffn(p, locals_[r], params.activation)
                    for p in parts]
            expert_out.append(merge_partitions(outs))
        combined = flexible_all_to_all(expert_out, 0, 1)
        outputs = [fast_decode(combined[r], crits[r]) for r in range(4)]
        for r in range(4):
            np.testing.assert_allclose(outputs[r], reference.outputs[r],
                                       atol=1e-10)


class TestRuntimeConsistency:
    """The runtime planner agrees with its building blocks."""

    def test_speedup_consistent_with_collective_gap(self):
        # Where 2DH dominates linear, the tutel/fairseq gap must be at
        # least the exposed-communication gap.
        cfg = MoEConfig(world_size=1024, experts_per_gpu=2,
                        model_dim=2048, hidden_dim=2048,
                        tokens_per_gpu=16384, top_k=2)
        topo = ndv4_topology(1024)
        from repro.runtime.plan import FAIRSEQ_FEATURES
        fair = moe_step_time(cfg, topo, FAIRSEQ_FEATURES)
        tutel = moe_step_time(cfg, topo, TUTEL_FEATURES)
        assert tutel.total < fair.total
        assert tutel.a2a_exposed < fair.a2a_exposed

    def test_dynamic_capacity_affects_step_time(self):
        topo = ndv4_topology(64)
        base = MoEConfig(world_size=64, experts_per_gpu=2,
                         model_dim=2048, hidden_dim=2048,
                         tokens_per_gpu=4096, top_k=2,
                         capacity_factor=1.0)
        t1 = moe_step_time(base, topo, TUTEL_FEATURES).total
        t8 = moe_step_time(base.with_(capacity_factor=8.0), topo,
                           TUTEL_FEATURES).total
        assert t8 > 2 * t1


class TestTrainedModelToRuntime:
    """A training run's measured needed-f drives the runtime models."""

    def test_trace_to_step_times(self):
        from repro.train.experiments import SMOKE, train_moe
        result = train_moe(SMOKE)
        trace = result.history.capacity_traces[0]
        assert trace
        topo = ndv4_topology(16)
        base = MoEConfig(world_size=16, experts_per_gpu=2,
                         model_dim=512, hidden_dim=2048,
                         tokens_per_gpu=4096, top_k=1,
                         capacity_factor=1.0)
        times = [moe_step_time(base.with_(capacity_factor=float(f)),
                               topo, TUTEL_FEATURES).total
                 for f in trace[:5]]
        assert all(t > 0 for t in times)
        # Higher needed capacity -> more work -> more time.
        f_lo, f_hi = min(trace), max(trace)
        if f_hi > 1.5 * f_lo:
            t_lo = moe_step_time(base.with_(capacity_factor=float(f_lo)),
                                 topo, TUTEL_FEATURES).total
            t_hi = moe_step_time(base.with_(capacity_factor=float(f_hi)),
                                 topo, TUTEL_FEATURES).total
            assert t_hi > t_lo


class TestFairseqVsTutelNumericalParity:
    """Baseline and Tutel execution modes differ in speed, never in
    numbers — the paper's 'deterministic gain' claim."""

    def test_all_paths_same_output(self):
        rng = np.random.default_rng(2)
        params = MoELayerParams.init(num_experts=4, model_dim=8,
                                     hidden_dim=16, rng=rng)
        x = rng.normal(size=(64, 8))
        from repro.baselines.fairseq_moe import fairseq_moe_forward
        import dataclasses
        fair = fairseq_moe_forward(x, params, capacity_factor=2.0)
        tutel_fast = moe_layer_forward(x, params,
                                       capacity=CapacityPolicy(2.0))
        tutel_dense = moe_layer_forward(
            x, dataclasses.replace(params, use_fast_encode=False),
            capacity=CapacityPolicy(2.0))
        np.testing.assert_allclose(fair.output, tutel_fast.output,
                                   atol=1e-10)
        np.testing.assert_allclose(fair.output, tutel_dense.output,
                                   atol=1e-10)
