"""Tests for the substrate dtype/parallelism config (ISSUE 6).

The contract under test: float32 is the process default, every leaf
Tensor follows the active substrate dtype, op outputs keep whatever
dtype NumPy produced (so a float64 gradcheck graph stays float64 end
to end), and the config always restores cleanly — a leaked dtype from
one test would silently change every later test's numerics.
"""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core.substrate import (
    SUPPORTED_DTYPES,
    default_dtype,
    default_itemsize,
    expert_parallelism,
    expert_workers,
    resolve_dtype,
    set_default_dtype,
    set_expert_workers,
    substrate_dtype,
)


@pytest.fixture(autouse=True)
def _pinned_substrate():
    """Pin the config to its documented defaults for these tests.

    CI re-runs this file under ``REPRO_DTYPE=float64``; the contract
    under test here is the *unconfigured* default (env handling has its
    own tests below), so start each test from float32/serial and restore
    whatever the process was using afterwards.
    """
    prev_dt = set_default_dtype(np.float32)
    prev_w = set_expert_workers(0)
    yield
    set_default_dtype(prev_dt)
    set_expert_workers(prev_w)


class TestDtypeConfig:
    def test_default_is_float32(self):
        assert default_dtype() == np.dtype(np.float32)
        assert default_itemsize() == 4

    def test_supported_dtypes(self):
        assert SUPPORTED_DTYPES == (np.dtype(np.float32),
                                    np.dtype(np.float64))

    def test_set_returns_previous_and_restores(self):
        prev = set_default_dtype(np.float64)
        try:
            assert prev == np.dtype(np.float32)
            assert default_dtype() == np.dtype(np.float64)
            assert default_itemsize() == 8
        finally:
            set_default_dtype(prev)
        assert default_dtype() == np.dtype(np.float32)

    @pytest.mark.parametrize("bad", [np.float16, np.int32, "int64",
                                     complex])
    def test_unsupported_dtype_rejected(self, bad):
        with pytest.raises(ValueError, match="unsupported substrate"):
            set_default_dtype(bad)
        # A rejected set must not have changed the active dtype.
        assert default_dtype() == np.dtype(np.float32)

    def test_string_spelling_accepted(self):
        prev = set_default_dtype("float64")
        try:
            assert default_dtype() == np.dtype(np.float64)
        finally:
            set_default_dtype(prev)

    def test_resolve_dtype(self):
        assert resolve_dtype(None) == default_dtype()
        assert resolve_dtype(np.float64) == np.dtype(np.float64)
        with pytest.raises(ValueError):
            resolve_dtype(np.int8)

    def test_context_manager_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with substrate_dtype(np.float64):
                assert default_dtype() == np.dtype(np.float64)
                raise RuntimeError("boom")
        assert default_dtype() == np.dtype(np.float32)

    def test_context_manager_nests(self):
        with substrate_dtype(np.float64):
            with substrate_dtype(np.float32):
                assert default_itemsize() == 4
            assert default_itemsize() == 8


class TestExpertWorkersConfig:
    def test_default_is_serial(self):
        assert expert_workers() == 0

    def test_set_and_context_manager(self):
        prev = set_expert_workers(3)
        try:
            assert prev == 0
            assert expert_workers() == 3
        finally:
            set_expert_workers(prev)
        with expert_parallelism(2):
            assert expert_workers() == 2
        assert expert_workers() == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            set_expert_workers(-1)
        assert expert_workers() == 0


class TestTensorDtypeSemantics:
    def test_leaf_follows_substrate_default(self):
        t = Tensor(np.arange(4.0))  # float64 payload coerced down
        assert t.data.dtype == np.float32
        with substrate_dtype(np.float64):
            assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_explicit_dtype_wins(self):
        t = Tensor(np.arange(4.0), dtype=np.float64)
        assert t.data.dtype == np.float64

    def test_from_op_preserves_op_dtype(self):
        # Op outputs must NOT be re-coerced: a float64 gradcheck graph
        # built under a float32 default would silently lose precision.
        a = Tensor(np.ones(3), dtype=np.float64, requires_grad=True)
        b = Tensor(np.ones(3), dtype=np.float64)
        assert (a + b).data.dtype == np.float64
        assert (a * b).data.dtype == np.float64

    def test_accumulate_coerces_grad_to_param_dtype(self):
        a = Tensor(np.ones(3), requires_grad=True)  # float32 leaf
        (a * Tensor(np.ones(3, dtype=np.float64),
                    dtype=np.float64)).sum().backward()
        assert a.grad is not None
        assert a.grad.dtype == np.float32

    def test_detach_preserves_dtype(self):
        a = Tensor(np.ones(3), dtype=np.float64, requires_grad=True)
        assert a.detach().data.dtype == np.float64

    def test_end_to_end_graph_is_float32(self):
        from repro.autograd.functional import gelu

        x = Tensor(np.random.default_rng(0).normal(size=(8, 4)),
                   requires_grad=True)
        w = Tensor(np.random.default_rng(1).normal(size=(4, 4)),
                   requires_grad=True)
        out = gelu(x @ w)
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32
        assert w.grad.dtype == np.float32


class TestEnvParsing:
    def test_dtype_env(self, monkeypatch):
        from repro.core.substrate import _dtype_from_env

        monkeypatch.delenv("REPRO_DTYPE", raising=False)
        assert _dtype_from_env() == np.dtype(np.float32)
        monkeypatch.setenv("REPRO_DTYPE", "float64")
        assert _dtype_from_env() == np.dtype(np.float64)
        monkeypatch.setenv("REPRO_DTYPE", "float16")
        with pytest.raises(ValueError):
            _dtype_from_env()

    def test_workers_env(self, monkeypatch):
        from repro.core.substrate import _workers_from_env

        monkeypatch.delenv("REPRO_EXPERT_WORKERS", raising=False)
        assert _workers_from_env() == 0
        monkeypatch.setenv("REPRO_EXPERT_WORKERS", "4")
        assert _workers_from_env() == 4
        monkeypatch.setenv("REPRO_EXPERT_WORKERS", "-2")
        with pytest.raises(ValueError):
            _workers_from_env()
        monkeypatch.setenv("REPRO_EXPERT_WORKERS", "many")
        with pytest.raises(ValueError, match="integer"):
            _workers_from_env()
