"""Tests for repro.core.config — Table 2 symbols and Equation (1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.config import MoEConfig, expert_capacity


class TestExpertCapacity:
    def test_equation_one_exact(self):
        # dC = k * f * T / E  (paper Equation 1)
        assert expert_capacity(2, 1.0, 4096, 8) == 1024

    def test_ceiling_applied(self):
        assert expert_capacity(1, 1.0, 10, 3) == 4  # ceil(10/3)

    def test_minimum_one(self):
        assert expert_capacity(1, 1.0, 1, 1024) == 1

    def test_fractional_factor(self):
        assert expert_capacity(1, 0.625, 4096, 32) == 80

    def test_scales_linearly_with_k(self):
        base = expert_capacity(1, 1.0, 4096, 8)
        assert expert_capacity(4, 1.0, 4096, 8) == 4 * base

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_bad_top_k(self, bad):
        with pytest.raises(ValueError):
            expert_capacity(bad, 1.0, 16, 2)

    def test_rejects_zero_capacity_factor(self):
        with pytest.raises(ValueError):
            expert_capacity(1, 0.0, 16, 2)

    def test_rejects_zero_tokens(self):
        with pytest.raises(ValueError):
            expert_capacity(1, 1.0, 0, 2)

    def test_rejects_zero_experts(self):
        with pytest.raises(ValueError):
            expert_capacity(1, 1.0, 16, 0)

    @given(k=st.integers(1, 8), f=st.floats(0.1, 16.0),
           t=st.integers(1, 100_000), e=st.integers(1, 512))
    def test_capacity_never_drops_even_distribution(self, k, f, t, e):
        cap = expert_capacity(k, f, t, e)
        assert cap >= 1
        if f >= 1.0:
            # With f >= 1, an even routing of k*t slots fits.
            assert cap * e >= k * t * min(f, 1.0) - e  # ceil slack


class TestMoEConfigDerived:
    def test_global_experts(self):
        cfg = MoEConfig(world_size=16, experts_per_gpu=2)
        assert cfg.num_global_experts == 32

    def test_fractional_experts(self):
        cfg = MoEConfig(world_size=8, experts_per_gpu=0.5)
        assert cfg.num_global_experts == 4
        assert cfg.expert_shards == 2

    def test_whole_expert_shards_is_one(self):
        assert MoEConfig(world_size=4, experts_per_gpu=1).expert_shards == 1

    def test_capacity_per_gpu_matches_equation(self):
        cfg = MoEConfig(world_size=8, experts_per_gpu=2,
                        tokens_per_gpu=4096, top_k=2, capacity_factor=1.0)
        assert cfg.capacity_per_gpu == expert_capacity(2, 1.0, 4096, 16)

    def test_global_capacity(self):
        cfg = MoEConfig(world_size=8, experts_per_gpu=1,
                        tokens_per_gpu=1024, top_k=1)
        assert cfg.global_capacity == 8 * cfg.capacity_per_gpu

    def test_figure7_weak_scaling_shape(self):
        # dE=1, tokens/step=16384 per GPU: dC shrinks 16384 -> 8 as the
        # world grows from 1 to 2048 (Figure 7's layout collapse).
        small = MoEConfig(world_size=1, experts_per_gpu=1,
                          tokens_per_gpu=16384, top_k=1)
        large = MoEConfig(world_size=2048, experts_per_gpu=1,
                          tokens_per_gpu=16384, top_k=1)
        assert small.capacity_per_gpu == 16384
        assert large.capacity_per_gpu == 8

    def test_dispatch_bytes(self):
        cfg = MoEConfig(world_size=4, experts_per_gpu=1, model_dim=128,
                        tokens_per_gpu=256, top_k=1, dtype_bytes=2)
        expected = (cfg.num_global_experts * cfg.capacity_per_gpu
                    * 128 * 2)
        assert cfg.dispatch_bytes_per_gpu == expected

    def test_expert_parameter_count(self):
        cfg = MoEConfig(world_size=4, experts_per_gpu=1,
                        model_dim=1024, hidden_dim=4096)
        assert cfg.expert_parameter_count == 2 * 1024 * 4096

    def test_num_nodes_rounds_up(self):
        cfg = MoEConfig(world_size=10, gpus_per_node=8)
        assert cfg.num_nodes == 2

    def test_tokens_per_step_global(self):
        cfg = MoEConfig(world_size=4, tokens_per_gpu=100)
        assert cfg.tokens_per_step == 400

    def test_with_override(self):
        cfg = MoEConfig(world_size=8)
        assert cfg.with_(capacity_factor=2.0).capacity_factor == 2.0
        assert cfg.capacity_factor == 1.0  # original unchanged

    def test_describe_mentions_symbols(self):
        text = MoEConfig(world_size=8).describe()
        assert "W=8" in text and "f=" in text


class TestMoEConfigValidation:
    def test_rejects_zero_world(self):
        with pytest.raises(ValueError):
            MoEConfig(world_size=0)

    def test_rejects_bad_fractional_experts(self):
        with pytest.raises(ValueError):
            MoEConfig(world_size=8, experts_per_gpu=0.3)

    def test_rejects_indivisible_shards(self):
        with pytest.raises(ValueError):
            MoEConfig(world_size=9, experts_per_gpu=0.5)

    def test_rejects_top_k_above_experts(self):
        with pytest.raises(ValueError):
            MoEConfig(world_size=2, experts_per_gpu=1, top_k=3)

    def test_rejects_negative_capacity_factor(self):
        with pytest.raises(ValueError):
            MoEConfig(capacity_factor=-1.0)

    def test_rejects_strange_dtype(self):
        with pytest.raises(ValueError):
            MoEConfig(dtype_bytes=3)

    @given(w=st.integers(1, 64), de=st.sampled_from([0.5, 1, 2, 4]),
           t=st.integers(1, 8192), k=st.integers(1, 2))
    def test_derived_quantities_consistent(self, w, de, t, k):
        if de < 1 and w % round(1 / de) != 0:
            return
        cfg = MoEConfig(world_size=w, experts_per_gpu=de,
                        tokens_per_gpu=t,
                        top_k=min(k, max(1, round(w * de))))
        assert cfg.num_global_experts >= 1
        assert cfg.global_capacity == w * cfg.capacity_per_gpu
        assert cfg.dispatch_bytes_per_gpu > 0
        assert math.isfinite(cfg.dispatch_bytes_per_gpu)
