"""Tests for the chaos-to-SLO scenario engine (repro.scenarios)."""

import dataclasses

import numpy as np
import pytest

from repro.bench.report import BenchResult
from repro.cli import main
from repro.cluster.topology import ndv4_topology
from repro.obs.runs import RunStore
from repro.scenarios import (
    SCENARIOS,
    ElasticResize,
    ExpertDeath,
    LinkBrownout,
    RankLoss,
    Scenario,
    SLOCheck,
    SLOSpec,
    emit_scenarios,
    get_scenario,
    price_replacement,
    run_scenario,
    scenario_names,
)


class TestSpecValidation:
    def test_rank_loss_needs_prior_checkpoint(self):
        with pytest.raises(ValueError, match="prior"):
            Scenario(name="x", title="x", seed=0, steps=10,
                     checkpoint_every=4,
                     events=(RankLoss(step=2),))

    def test_rank_loss_past_horizon(self):
        with pytest.raises(ValueError, match="precede"):
            Scenario(name="x", title="x", seed=0, steps=10,
                     checkpoint_every=4,
                     events=(RankLoss(step=10),))

    def test_fast_horizon_also_validated(self):
        with pytest.raises(ValueError, match="precede"):
            Scenario(name="x", title="x", seed=0, steps=16,
                     fast_steps=8, checkpoint_every=4,
                     events=(RankLoss(step=9),))

    def test_expert_death_layer_range(self):
        # num_blocks=2 -> a single MoE layer (every other block).
        with pytest.raises(ValueError, match="out of range"):
            Scenario(name="x", title="x", seed=0, steps=10,
                     num_blocks=2,
                     events=(ExpertDeath(step=1, layer=1),))

    def test_expert_death_expert_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Scenario(name="x", title="x", seed=0, steps=10,
                     num_experts=4,
                     events=(ExpertDeath(step=1, expert=4),))

    def test_duplicate_rank_loss_step(self):
        with pytest.raises(ValueError, match="one rank loss per step"):
            Scenario(name="x", title="x", seed=0, steps=10,
                     checkpoint_every=4,
                     events=(RankLoss(step=5, ranks=(0,)),
                             RankLoss(step=5, ranks=(1,))))

    def test_unknown_event_rejected(self):
        with pytest.raises(TypeError, match="unknown scenario event"):
            Scenario(name="x", title="x", seed=0, steps=10,
                     events=("boom",))

    def test_event_validation(self):
        with pytest.raises(ValueError):
            LinkBrownout(step=3, end_step=3)
        with pytest.raises(ValueError):
            LinkBrownout(step=1, end_step=5, factor=0.0)
        with pytest.raises(ValueError):
            RankLoss(step=5, ranks=())
        with pytest.raises(ValueError):
            RankLoss(step=5, recovery_deadline_s=0.0)
        with pytest.raises(ValueError):
            ElasticResize(step=1, new_world=0)
        with pytest.raises(ValueError):
            SLOSpec(loss_band=(2.0, 1.0))
        with pytest.raises(ValueError):
            SLOSpec(max_model_slowdown=0.0)

    def test_resolved_fast_shrinks_steps(self):
        sc = Scenario(name="x", title="x", seed=0, steps=16,
                      fast_steps=8)
        assert sc.resolved(fast=False).steps == 16
        assert sc.resolved(fast=True).steps == 8
        assert sc.resolved(fast=True).fast_steps is None

    def test_brownout_factor_at(self):
        sc = Scenario(name="x", title="x", seed=0, steps=12,
                      events=(LinkBrownout(step=3, end_step=8,
                                           factor=0.25),))
        assert sc.brownout_factor_at(2) == (1.0, False)
        assert sc.brownout_factor_at(3) == (0.25, True)
        assert sc.brownout_factor_at(8) == (1.0, False)


class TestLibrary:
    def test_at_least_four_scenarios(self):
        assert len(scenario_names()) >= 4
        assert scenario_names() == sorted(scenario_names())

    def test_expected_names_present(self):
        assert {"rank_loss_deadline", "expert_death_loss_slo",
                "link_brownout_switch",
                "elastic_scale"} <= set(SCENARIOS)

    def test_every_scenario_has_a_hard_model_bound(self):
        """Each named scenario must carry >= 1 deterministic SLO
        assertion (not just wall-clock bounds)."""
        for name in scenario_names():
            slo = get_scenario(name).slo
            hard = (slo.loss_band is not None
                    or slo.max_loss_parity is not None
                    or slo.max_model_slowdown is not None
                    or slo.max_replacement_seconds is not None
                    or slo.min_scaleup_throughput_ratio is not None
                    or slo.require_a2a_switch)
            assert hard, name

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="known:.*rank_loss"):
            get_scenario("nope")


class TestSLOCheck:
    def test_ops(self):
        assert SLOCheck("a", 1.0, 2.0, "<=").passed
        assert not SLOCheck("a", 3.0, 2.0, "<=").passed
        assert SLOCheck("a", 3.0, 2.0, ">=").passed
        assert not SLOCheck("a", 1.0, 2.0, ">=").passed

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            SLOCheck("a", 1.0, 2.0, "==")

    def test_describe(self):
        text = SLOCheck("lat", 3.0, 2.0, "<=", measured=True).describe()
        assert "[FAIL]" in text and "wall-clock" in text


class TestPriceReplacement:
    def test_scale_up_moves_shards(self):
        topo = ndv4_topology(32)
        secs, moved = price_replacement(16, 32, 8, topo, 8e6)
        assert secs > 0
        assert moved > 0

    def test_identity_resize_is_free(self):
        topo = ndv4_topology(16)
        assert price_replacement(16, 16, 8, topo, 8e6) == (0.0, 0.0)

    def test_deterministic(self):
        topo = ndv4_topology(32)
        assert (price_replacement(16, 32, 8, topo, 8e6)
                == price_replacement(16, 32, 8, topo, 8e6))

    def test_scale_down_also_priced(self):
        topo = ndv4_topology(32)
        secs, moved = price_replacement(32, 8, 8, topo, 8e6)
        assert secs > 0 and moved > 0

    def test_small_topology_rejected(self):
        with pytest.raises(ValueError, match="topology spans"):
            price_replacement(16, 32, 8, ndv4_topology(16), 8e6)

    def test_degraded_fabric_costs_more(self):
        topo = ndv4_topology(32)
        slow = topo.with_degraded_inter_link(0.25)
        fast_s, _ = price_replacement(16, 32, 8, topo, 8e6)
        slow_s, _ = price_replacement(16, 32, 8, slow, 8e6)
        assert slow_s > fast_s


class TestRunScenario:
    @pytest.fixture(scope="class")
    def results(self):
        return {name: run_scenario(get_scenario(name), fast=True)
                for name in scenario_names()}

    def test_all_named_scenarios_pass(self, results):
        for name, res in results.items():
            assert res.passed, res.describe()
            assert res.checks, name

    def test_rank_loss_recovers_under_deadline(self, results):
        res = results["rank_loss_deadline"]
        deadline = next(c for c in res.checks
                        if c.name == "recovery_deadline_0")
        assert deadline.measured and deadline.passed
        assert res.metric("replay_steps_0").value >= 1
        kinds = [ev["kind"] for ev in res.timeline]
        assert "rank_loss" in kinds

    def test_expert_death_bounded_by_twin(self, results):
        res = results["expert_death_loss_slo"]
        parity = next(c for c in res.checks if c.name == "loss_parity")
        assert parity.passed
        deaths = [ev for ev in res.timeline
                  if ev["kind"] == "expert_death"]
        assert len(deaths) == 2
        assert {d["layer"] for d in deaths} == {0, 1}

    def test_brownout_switches_a2a(self, results):
        res = results["link_brownout_switch"]
        assert res.metric("a2a_switched").value == 1.0
        brown = next(ev for ev in res.timeline
                     if ev["kind"] == "link_brownout")
        assert brown["a2a"] == "2dh->linear"
        assert any(ev["kind"] == "brownout_cleared"
                   for ev in res.timeline)

    def test_elastic_prices_movement(self, results):
        res = results["elastic_scale"]
        assert res.metric("replacement_seconds").value > 0
        assert res.metric("replacement_moved_mb").value > 0
        assert res.metric("scaleup_throughput_ratio").value > 1.2
        resizes = [ev for ev in res.timeline
                   if ev["kind"] == "elastic_resize"]
        assert [ev["world"] for ev in resizes] == ["16->32", "32->8"]

    def test_losses_finite_and_described(self, results):
        for res in results.values():
            assert np.isfinite(res.losses).all()
            text = res.describe()
            assert "SLO report" in text and "PASS" in text

    def test_model_metrics_deterministic(self, results):
        """Same seed, same scenario -> bitwise-identical model-kind
        metrics (the BENCH_scenarios.json determinism contract)."""
        again = run_scenario(get_scenario("elastic_scale"), fast=True)
        base = results["elastic_scale"]
        for m in base.metrics:
            if m.kind != "model":
                continue
            assert again.metric(m.name).value == m.value, m.name

    def test_failing_slo_reported_not_raised(self):
        sc = dataclasses.replace(
            get_scenario("elastic_scale"),
            slo=SLOSpec(loss_band=(0.0, 0.01)))
        res = run_scenario(sc, fast=True)
        assert not res.passed
        assert res.metric("slo_pass").value == 0.0
        failed = [c for c in res.checks if not c.passed]
        assert [c.name for c in failed] == ["final_loss_max"]

    def test_unknown_metric_rejected(self, results):
        with pytest.raises(KeyError):
            results["elastic_scale"].metric("bogus")


class TestBenchEmission:
    def test_emit_round_trip(self, tmp_path):
        res = run_scenario(get_scenario("elastic_scale"), fast=True)
        emit_scenarios([res], fast=True, directory=tmp_path)
        loaded = BenchResult.load(tmp_path / "BENCH_scenarios.json")
        names = {m.name for m in loaded.metrics}
        assert "elastic_scale.slo_pass" in names
        assert "elastic_scale.replacement_seconds" in names
        assert loaded.config["mode"] == "fast"
        assert loaded.config["seeds"]["elastic_scale"] == 7
        # Namespacing preserves metric kinds for the regression gate.
        pass_metric = next(m for m in loaded.metrics
                           if m.name == "elastic_scale.slo_pass")
        assert pass_metric.kind == "model"
        assert pass_metric.value == 1.0


class TestRunRegistryIntegration:
    @pytest.fixture()
    def recorded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        res = run_scenario(get_scenario("rank_loss_deadline"),
                           fast=True)
        return res, RunStore(tmp_path)

    def test_events_and_summary_recorded(self, recorded):
        res, store = recorded
        assert res.run_id is not None
        manifest = store.manifest(res.run_id)
        assert manifest.status == "complete"
        assert manifest.summary["scenario"] == "rank_loss_deadline"
        assert manifest.summary["passed"] is True
        kinds = {e["kind"] for e in store.events(res.run_id)}
        assert {"scenario", "fault", "recovery",
                "slo_check"} <= kinds

    def test_slo_checks_in_stream(self, recorded):
        res, store = recorded
        checks = [e for e in store.events(res.run_id)
                  if e["kind"] == "slo_check"]
        assert len(checks) == len(res.checks)
        assert all(c["data"]["passed"] for c in checks)

    def test_replayed_steps_compacted(self, recorded):
        """After the rank-loss restore the engine compacts its own run:
        every training step appears exactly once in the stream."""
        res, store = recorded
        steps = [e["step"] for e in store.events(res.run_id)
                 if e["kind"] == "step"]
        assert len(steps) == len(set(steps))
        assert len(steps) == len(res.losses)


class TestScenarioCLI:
    def test_list(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_single_scenario_passes(self, capsys):
        assert main(["scenario", "elastic_scale", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "-> PASS" in out
        assert "elastic_resize" in out

    def test_all_emits_bench_record(self, tmp_path, capsys,
                                    monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_RUNS_DIR", raising=False)
        assert main(["scenario", "--all", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "scenario SLO report" in out
        assert (tmp_path / "BENCH_scenarios.json").exists()

    def test_failing_slo_exits_nonzero(self, capsys, monkeypatch):
        broken = dataclasses.replace(
            get_scenario("elastic_scale"),
            slo=SLOSpec(loss_band=(0.0, 0.01)))
        monkeypatch.setitem(SCENARIOS, "elastic_scale", broken)
        assert main(["scenario", "elastic_scale", "--fast"]) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_seed_override(self, capsys):
        # A foreign seed may legitimately miss the loss band; the
        # point is that the override reaches the engine.
        rc = main(["scenario", "elastic_scale", "--fast",
                   "--seed", "123"])
        assert rc in (0, 1)
        assert "seed 123" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenario", "nope"])

    def test_bare_invocation_rejected(self):
        with pytest.raises(SystemExit, match="give a scenario name"):
            main(["scenario"])
