"""Hypothesis property tests on cross-cutting invariants.

Module-local property tests live next to their units; this file holds
the invariants that span modules: token conservation through the
dispatch/combine pipeline, linearity of the collectives, and cost-model
sanity under arbitrary valid configurations.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster.topology import ndv4_topology
from repro.collectives.functional import (
    all_to_all_2dh,
    all_to_all_linear,
    flexible_all_to_all,
)
from repro.collectives.schedule import (
    A2AAlgorithm,
    a2a_time,
    linear_a2a_time,
    twodh_a2a_time,
)
from repro.core.config import MoEConfig
from repro.moe.encode import fast_decode, fast_encode
from repro.moe.gating import compute_locations, softmax, top_k_routing


def routing_case(t, e, k, cap, seed):
    rng = np.random.default_rng(seed)
    probs = softmax(rng.normal(size=(t, e)))
    return top_k_routing(probs, k, capacity=cap), rng


class TestTokenConservation:
    @settings(max_examples=40, deadline=None)
    @given(t=st.integers(2, 48), e=st.integers(2, 8),
           k=st.integers(1, 3), cap=st.integers(1, 12),
           seed=st.integers(0, 1000))
    def test_every_valid_route_lands_exactly_once(self, t, e, k, cap,
                                                  seed):
        if k > e:
            return
        crit, rng = routing_case(t, e, k, cap, seed)
        x = np.eye(t, 4) + rng.normal(0, 0.0, (t, 4))
        x = rng.normal(size=(t, 4))
        dispatched = fast_encode(x, crit)
        # Count non-zero capacity cells == number of valid routes
        # (token rows are generically non-zero).
        live = crit.valid & (crit.gates != 0)
        filled = (np.abs(dispatched).sum(axis=2) > 0).sum()
        assert filled == live.sum()

    @settings(max_examples=40, deadline=None)
    @given(t=st.integers(2, 48), e=st.integers(2, 8),
           seed=st.integers(0, 1000))
    def test_no_capacity_loss_with_full_capacity(self, t, e, seed):
        crit, rng = routing_case(t, e, 1, t, seed)
        assert crit.dropped_fraction() == 0.0
        # Each expert's queue holds exactly its routed tokens.
        counts = np.bincount(crit.idxs[0], minlength=e)
        assert crit.max_needed_capacity() == counts.max()


class TestDecodeLinearity:
    @settings(max_examples=30, deadline=None)
    @given(t=st.integers(2, 24), e=st.integers(2, 6),
           k=st.integers(1, 2), seed=st.integers(0, 500),
           alpha=st.floats(-3, 3), beta=st.floats(-3, 3))
    def test_decode_linear_in_expert_output(self, t, e, k, seed, alpha,
                                            beta):
        if k > e:
            return
        crit, rng = routing_case(t, e, k, max(1, t // 2), seed)
        z1 = rng.normal(size=(e, crit.capacity, 5))
        z2 = rng.normal(size=(e, crit.capacity, 5))
        lhs = fast_decode(alpha * z1 + beta * z2, crit)
        rhs = alpha * fast_decode(z1, crit) + beta * fast_decode(z2,
                                                                 crit)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(t=st.integers(2, 24), e=st.integers(2, 6),
           seed=st.integers(0, 500))
    def test_encode_linear_in_tokens(self, t, e, seed):
        crit, rng = routing_case(t, e, 1, t, seed)
        x1 = rng.normal(size=(t, 5))
        x2 = rng.normal(size=(t, 5))
        lhs = fast_encode(x1 + x2, crit)
        rhs = fast_encode(x1, crit) + fast_encode(x2, crit)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)


class TestCollectiveInvariants:
    @settings(max_examples=20, deadline=None)
    @given(nodes=st.integers(1, 3), m=st.sampled_from([2, 4]),
           seed=st.integers(0, 100))
    def test_a2a_conserves_multiset(self, nodes, m, seed):
        n = nodes * m
        rng = np.random.default_rng(seed)
        world = [rng.normal(size=(n, 2)) for _ in range(n)]
        out = all_to_all_2dh(world, gpus_per_node=m)
        before = np.sort(np.concatenate([w.ravel() for w in world]))
        after = np.sort(np.concatenate([o.ravel() for o in out]))
        np.testing.assert_allclose(before, after)

    @settings(max_examples=20, deadline=None)
    @given(w=st.sampled_from([2, 4]), e_mult=st.integers(1, 3),
           dc=st.integers(1, 4), m=st.integers(1, 4),
           seed=st.integers(0, 100))
    def test_flexible_a2a_roundtrip(self, w, e_mult, dc, m, seed):
        e = w * e_mult
        rng = np.random.default_rng(seed)
        world = [rng.normal(size=(e, dc, m)) for _ in range(w)]
        there = flexible_all_to_all(world, 1, 0)
        back = flexible_all_to_all(there, 0, 1)
        for r in range(w):
            np.testing.assert_allclose(back[r], world[r])

    @settings(max_examples=20, deadline=None)
    @given(n=st.sampled_from([8, 64, 512]),
           log_bytes=st.integers(10, 28),
           algo=st.sampled_from(list(A2AAlgorithm)))
    def test_latency_positive_and_monotone_in_bytes(self, n, log_bytes,
                                                    algo):
        topo = ndv4_topology(n)
        small = a2a_time(topo, 2.0 ** log_bytes, algo)
        big = a2a_time(topo, 2.0 ** (log_bytes + 2), algo)
        assert 0 < small <= big

    @settings(max_examples=15, deadline=None)
    @given(n=st.sampled_from([64, 256, 1024]),
           log_bytes=st.integers(12, 26))
    def test_someone_always_wins(self, n, log_bytes):
        topo = ndv4_topology(n)
        nbytes = 2.0 ** log_bytes
        assert min(linear_a2a_time(topo, nbytes),
                   twodh_a2a_time(topo, nbytes)) > 0


class TestLocationInvariants:
    @settings(max_examples=30, deadline=None)
    @given(t=st.integers(1, 64), e=st.integers(1, 8),
           k=st.integers(1, 3), seed=st.integers(0, 500))
    def test_priority_is_a_permutation(self, t, e, k, seed):
        rng = np.random.default_rng(seed)
        idxs = rng.integers(0, e, size=(k, t))
        priority = rng.normal(size=t)
        plain = compute_locations(idxs, e)
        prio = compute_locations(idxs, e, priority=priority)
        # BPR permutes queue positions per expert but preserves the
        # multiset of positions.
        for expert in range(e):
            np.testing.assert_array_equal(
                np.sort(plain[idxs == expert]),
                np.sort(prio[idxs == expert]))


class TestConfigCostSanity:
    @settings(max_examples=25, deadline=None)
    @given(w=st.sampled_from([8, 64, 512]),
           de=st.sampled_from([0.5, 1, 2]),
           t=st.sampled_from([1024, 4096, 16384]),
           f=st.floats(0.25, 16.0), k=st.integers(1, 2))
    def test_moe_step_time_finite_and_positive(self, w, de, t, f, k):
        e = max(1, round(w * de))
        cfg = MoEConfig(world_size=w, experts_per_gpu=de, model_dim=512,
                        hidden_dim=2048, tokens_per_gpu=t,
                        top_k=min(k, e), capacity_factor=f)
        from repro.runtime.plan import TUTEL_FEATURES, moe_step_time
        bd = moe_step_time(cfg, ndv4_topology(w), TUTEL_FEATURES)
        assert np.isfinite(bd.total)
        assert bd.total > 0
        assert bd.compute_only <= bd.total + 1e-12
