"""Tests for the repro.obs instrumentation layer."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    CAT_MOE,
    NULL_SPAN,
    MetricsRegistry,
    Observer,
    TraceRecorder,
)


@pytest.fixture(autouse=True)
def clean_observer():
    """Never leak a process-wide observer across tests."""
    obs.set_observer(None)
    yield
    obs.set_observer(None)


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2.5)
        assert reg.counter("a").value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        reg.gauge("g").set(7.0)
        assert reg.gauge("g").value == 7.0
        assert reg.gauge("g").updates == 2

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            reg.histogram("h").observe(v)
        h = reg.histogram("h")
        assert h.count == 3
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_empty_histogram_defined(self):
        h = MetricsRegistry().histogram("h")
        assert h.mean == 0.0
        s = h.summary()
        assert s["min"] == 0.0
        assert s["empty"] is True           # zero observations flagged
        assert s["p50"] == 0.0 and s["p99"] == 0.0
        h.observe(2.0)
        assert h.summary()["empty"] is False

    def test_summary_keys_contract_on_cold_instrument(self):
        # The pinned contract: every SUMMARY_KEYS field is present in
        # key order even with zero observations — notably "count": 0 —
        # so aggregating consumers never guard against missing keys.
        from repro.obs.registry import SUMMARY_KEYS

        cold = MetricsRegistry().histogram("cold").summary()
        assert tuple(cold) == SUMMARY_KEYS
        assert cold["count"] == 0
        assert all(v == v for v in cold.values())  # no NaNs
        json.dumps(cold)

    def test_histogram_quantiles_exact_under_reservoir_size(self):
        from repro.obs.registry import RESERVOIR_SIZE

        reg = MetricsRegistry()
        h = reg.histogram("h")
        values = list(range(101))  # well under RESERVOIR_SIZE
        assert len(values) <= RESERVOIR_SIZE
        for v in values:
            h.observe(float(v))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.5) == pytest.approx(50.0)
        assert h.quantile(0.95) == pytest.approx(95.0)

    def test_histogram_quantiles_deterministic_when_sampling(self):
        # Past the reservoir size the quantiles are sampled, but the
        # per-instrument seed makes two identical runs agree exactly.
        def fill():
            h = MetricsRegistry().histogram("latency")
            for v in range(10_000):
                h.observe(float(v))
            return h

        a, b = fill(), fill()
        assert a.quantile(0.5) == b.quantile(0.5)
        assert a.quantile(0.99) == b.quantile(0.99)
        # Sampled quantiles stay near the true ones on uniform data.
        assert a.quantile(0.5) == pytest.approx(5_000, rel=0.25)

    def test_histogram_quantile_validates_and_defaults(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.5) == 0.0  # empty histogram
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_summary_includes_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        s = h.summary()
        assert {"p50", "p95", "p99"} <= set(s)
        assert s["p50"] == pytest.approx(2.0)
        snap = reg.snapshot()
        json.dumps(snap)
        assert "p95" in snap["histograms"]["h"]

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(0.5)
        json.dumps(reg.snapshot())

    def test_render_lists_instruments(self):
        reg = MetricsRegistry()
        reg.counter("my.counter").inc()
        reg.histogram("my.timer").observe(0.25)
        text = reg.render()
        assert "my.counter" in text
        assert "my.timer" in text


class TestSpans:
    def test_span_records_histogram_and_event(self):
        ob = Observer(recorder=TraceRecorder())
        with ob.span("work", "cat"):
            pass
        assert ob.registry.histogram("cat.work").count == 1
        assert len(ob.recorder.events) == 1
        event = ob.recorder.events[0]
        assert event.name == "work"
        assert event.cat == "cat"
        assert event.dur >= 0

    def test_span_without_recorder_still_times(self):
        ob = Observer()
        with ob.span("work", "cat"):
            pass
        assert ob.registry.histogram("cat.work").count == 1

    def test_record_span_explicit_clock(self):
        ob = Observer(recorder=TraceRecorder())
        ob.record_span("k0", "sim", start=1.0, dur=0.5, track="sim/gpu0")
        event = ob.recorder.events[0]
        assert (event.ts, event.dur, event.track) == (1.0, 0.5, "sim/gpu0")

    def test_instant_marker(self):
        ob = Observer(recorder=TraceRecorder())
        ob.instant("explore", "pipeline", args={"f": 1.5})
        assert ob.registry.counter("pipeline.explore").value == 1
        assert ob.recorder.events[0].phase == "i"

    def test_module_span_disabled_is_null_singleton(self):
        # The zero-cost contract: with no observer installed the span
        # helper returns the shared no-op singleton, so hot call sites
        # pay one is-None check and nothing else.
        assert obs.get_observer() is None
        assert obs.span("anything", CAT_MOE) is NULL_SPAN
        with obs.span("anything", CAT_MOE):
            pass  # no-op context protocol works

    def test_module_span_enabled_records(self):
        ob = obs.enable()
        with obs.span("x", "c"):
            pass
        assert ob.registry.histogram("c.x").count == 1
        obs.disable()
        assert obs.span("x", "c") is NULL_SPAN

    def test_timed_decorator_lazy_lookup(self):
        @obs.timed("fn", cat="c")
        def fn():
            return 41 + 1

        assert fn() == 42  # disabled: plain call
        ob = obs.enable(trace=False)
        assert fn() == 42
        assert ob.registry.histogram("c.fn").count == 1

    def test_set_observer_returns_previous(self):
        first = Observer()
        assert obs.set_observer(first) is None
        assert obs.set_observer(None) is first


class TestTraceExport:
    def _recorder_with_events(self):
        rec = TraceRecorder()
        rec.span("gate", "moe", ts=0.0, dur=0.001)
        rec.span("a2a", "collective", ts=0.001, dur=0.002,
                 track="sim/gpu0/comm", args={"world": 8})
        rec.instant("explore", "pipeline", ts=0.002)
        return rec

    def test_chrome_trace_round_trips_json(self):
        rec = self._recorder_with_events()
        parsed = json.loads(rec.dumps_chrome_trace())
        events = parsed["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 2
        for e in spans:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e)
        assert any(e["ph"] == "i" for e in events)

    def test_tracks_become_named_threads(self):
        parsed = json.loads(self._recorder_with_events()
                            .dumps_chrome_trace())
        meta = [e for e in parsed["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"main", "sim/gpu0/comm"}
        tids = {e["tid"] for e in meta}
        assert len(tids) == len(meta)

    def test_timestamps_exported_in_microseconds(self):
        rec = TraceRecorder()
        rec.span("s", "c", ts=0.5, dur=0.25)
        event = [e for e in rec.to_chrome_trace()["traceEvents"]
                 if e["ph"] == "X"][0]
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(0.25e6)

    def test_jsonl_one_object_per_line(self):
        rec = self._recorder_with_events()
        lines = rec.dumps_jsonl().splitlines()
        assert len(lines) == 3
        for line in lines:
            obj = json.loads(line)
            assert {"name", "cat", "ph", "ts", "dur", "track"} <= set(obj)

    def test_dump_files(self, tmp_path):
        rec = self._recorder_with_events()
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        rec.dump_chrome_trace(str(chrome))
        rec.dump_jsonl(str(jsonl))
        json.loads(chrome.read_text())
        assert len(jsonl.read_text().splitlines()) == 3

    def test_max_events_cap(self):
        rec = TraceRecorder(max_events=2)
        for i in range(5):
            rec.span(f"s{i}", "c", ts=float(i), dur=0.1)
        assert len(rec.events) == 2
        assert rec.dropped == 3


class TestJsonlRoundTrip:
    """Write -> parse -> compare for a trace carrying both substrates'
    event types, including the resilience events."""

    def _fault_laden_observer(self):
        ob = obs.enable()
        from repro.cluster.simulator import Schedule, simulate
        from repro.obs import CAT_CKPT, CAT_FAULT, CAT_TRAIN
        from repro.resilience.faults import FaultPlan, OpFailure

        for step in range(3):
            ob.begin_step(step)
            with ob.span("train_step", CAT_TRAIN, args={"step": step}):
                pass
            if step == 1:
                ob.instant("step_skipped", CAT_TRAIN,
                           args={"step": step})
                ob.instant("saved", CAT_CKPT,
                           args={"step": step, "path": "x.npz"})
        s = Schedule()
        s.new_op(work=1.0, label="victim")
        simulate(s, faults=FaultPlan(op_failures=[
            OpFailure(time=0.5, gpu=0, timeout=0.1)]))
        assert any(e.cat == CAT_FAULT for e in ob.recorder.events)
        return ob

    def test_round_trip_preserves_events(self, tmp_path):
        ob = self._fault_laden_observer()
        path = str(tmp_path / "events.jsonl")
        ob.recorder.dump_jsonl(path)
        loaded = TraceRecorder.load_jsonl(path)
        assert len(loaded.events) == len(ob.recorder.events)
        for got, want in zip(loaded.events, ob.recorder.events):
            assert got == want  # TraceEvent is a frozen dataclass

    def test_round_trip_keeps_types_and_steps(self, tmp_path):
        ob = self._fault_laden_observer()
        path = str(tmp_path / "events.jsonl")
        ob.recorder.dump_jsonl(path)
        events = TraceRecorder.load_jsonl(path).events

        by_cat = {}
        for e in events:
            by_cat.setdefault(e.cat, []).append(e)
        assert {"train", "ckpt", "fault"} <= set(by_cat)
        # Step attribution survives the round trip.
        steps = sorted(e.args["step"] for e in by_cat["train"]
                       if e.name == "train_step")
        assert steps == [0, 1, 2]
        assert by_cat["ckpt"][0].args == {"step": 1, "path": "x.npz"}
        fault_names = [e.name for e in by_cat["fault"]]
        assert fault_names == ["injected", "recovered"]
        # Instants parse back as instants, spans as spans.
        assert all(e.phase == "i" for e in by_cat["fault"])
        assert any(e.phase == "X" for e in by_cat["train"])

    def test_wall_clock_timestamps_monotonic(self, tmp_path):
        ob = self._fault_laden_observer()
        path = str(tmp_path / "events.jsonl")
        ob.recorder.dump_jsonl(path)
        events = TraceRecorder.load_jsonl(path).events
        wall = [e.ts for e in events if e.track == "main"]
        assert wall
        assert all(b >= a for a, b in zip(wall, wall[1:]))


class TestMoEIntegration:
    def test_functional_layer_emits_spans_and_routing(self):
        from repro.moe.layer import MoELayerParams, moe_layer_forward
        rng = np.random.default_rng(0)
        params = MoELayerParams.init(num_experts=4, model_dim=8,
                                     hidden_dim=16, rng=rng)
        x = rng.normal(size=(32, 8))
        ob = obs.enable()
        moe_layer_forward(x, params)
        names = {e.name for e in ob.recorder.events}
        assert {"gate", "encode", "expert_ffn", "decode"} <= names
        assert len(ob.routing_history) == 1
        stats = ob.routing_history[0].stats
        assert stats.num_tokens == 32
        assert stats.num_experts == 4

    def test_disabled_layer_forward_records_nothing(self):
        from repro.moe.layer import MoELayerParams, moe_layer_forward
        rng = np.random.default_rng(0)
        params = MoELayerParams.init(num_experts=4, model_dim=8,
                                     hidden_dim=16, rng=rng)
        out = moe_layer_forward(rng.normal(size=(16, 8)), params)
        assert out.output.shape == (16, 8)  # and no observer to check


class TestTrainerIntegration:
    def _train(self, steps=2):
        from repro.nn.models import MoEClassifier
        from repro.train.data import ClusteredTokenTask
        from repro.train.trainer import train_model
        task = ClusteredTokenTask(num_clusters=4, input_dim=6,
                                  num_classes=3, noise=0.4, seed=0)
        rng = np.random.default_rng(0)
        model = MoEClassifier(input_dim=6, model_dim=16, hidden_dim=32,
                              num_classes=3, num_blocks=2, num_experts=4,
                              rng=rng, top_k=2)
        train_model(model, task.sample(128), task.sample(64),
                    steps=steps, batch_size=32)
        return model

    def test_step_trace_has_moe_spans_and_routing_stats(self):
        # Acceptance criterion: one trainer step's trace carries
        # gate/encode/expert_ffn/decode spans, per-step RoutingStats,
        # and exports valid Chrome JSON.
        ob = obs.enable()
        model = self._train(steps=2)
        names = {e.name for e in ob.recorder.events}
        assert {"step", "forward", "backward", "optimizer",
                "gate", "encode", "expert_ffn", "decode"} <= names

        n_layers = len(model.moe_layers())
        train_records = [r for r in ob.routing_history if r.step >= 0]
        assert len(train_records) == 2 * n_layers
        assert {r.step for r in train_records} == {0, 1}
        for rec in train_records:
            assert rec.stats.num_tokens == 32
            assert 0.0 <= rec.stats.dropped_fraction <= 1.0
            assert rec.stats.load_imbalance >= 1.0

        parsed = json.loads(ob.recorder.dumps_chrome_trace())
        spans = [e for e in parsed["traceEvents"] if e.get("ph") == "X"]
        assert spans
        for e in spans:
            assert {"ph", "ts", "dur", "name"} <= set(e)

    def test_capacity_factor_series_excludes_eval(self):
        ob = obs.enable(trace=False)
        self._train(steps=3)
        series = ob.capacity_factor_series(layer=0)
        assert len(series) == 3
        assert all(f >= 1.0 for f in series)

    def test_metrics_counters(self):
        ob = obs.enable(trace=False)
        self._train(steps=2)
        assert ob.registry.counter("train.steps").value == 2
        assert ob.registry.histogram("train.step").count == 2


class TestSimulatorIntegration:
    def test_sim_spans_land_on_stream_tracks(self):
        from repro.cluster.simulator import Schedule, simulate
        sched = Schedule()
        a = sched.new_op(work=1.0, stream="compute", kind="compute",
                         label="ffn")
        sched.new_op(work=0.5, stream="comm", kind="comm", label="a2a",
                     deps=(a,))
        ob = obs.enable()
        result = simulate(sched)
        tracks = {e.track for e in ob.recorder.events}
        assert {"sim/gpu0/compute", "sim/gpu0/comm"} <= tracks
        ffn = [e for e in ob.recorder.events if e.name == "ffn"][0]
        assert (ffn.ts, ffn.dur) == result.span(a)
        assert ob.registry.counter("sim.ops").value == 2

    def test_simulated_and_wall_clock_share_one_trace(self):
        from repro.cluster.simulator import Schedule, simulate
        sched = Schedule()
        sched.new_op(work=1.0, label="compute")
        ob = obs.enable()
        with obs.span("wall_work", "bench"):
            simulate(sched)
        cats = {e.cat for e in ob.recorder.events}
        assert {"sim", "bench"} <= cats


class TestAdaptiveSearchIntegration:
    def test_exploration_log(self):
        from repro.pipeline.adaptive import OnlinePipeliningSearch
        search = OnlinePipeliningSearch()
        ob = obs.enable()
        n = len(search.strategies)
        for _ in range(n):
            search.step(2.0, lambda s: float(s.degree))
        explores = [e for e in ob.recorder.events if e.name == "explore"]
        assert len(explores) == n          # each strategy explored once
        # A nearby factor lands in the already-explored bucket: no new
        # exploration, the shared measurements answer immediately.
        for _ in range(3):
            search.step(2.5, lambda s: float(s.degree))
        explores = [e for e in ob.recorder.events if e.name == "explore"]
        assert len(explores) == n
        assert ob.registry.counter("pipeline.bucket_hits").value == 3
        assert (ob.registry.counter("pipeline.measurements").value
                == n + 3)
        assert ob.registry.histogram("pipeline.measured_time").count \
            == n + 3


class TestCollectivesIntegration:
    def test_all_to_all_spans(self):
        from repro.collectives.functional import (
            all_to_all_2dh,
            all_to_all_linear,
        )
        rng = np.random.default_rng(0)
        world = [rng.normal(size=(4, 3)) for _ in range(4)]
        ob = obs.enable()
        all_to_all_linear(world)
        all_to_all_2dh(world, gpus_per_node=2)
        names = {e.name for e in ob.recorder.events}
        assert {"all_to_all_linear", "all_to_all_2dh"} <= names
        assert ob.registry.histogram(
            "collective.all_to_all_linear").count == 1


class TestHistogramSmallNExact:
    """Serving SLO gates read p99 from short ``--fast`` runs, which
    must see *exact* order statistics — no sampling noise — while the
    observation count is within the reservoir."""

    def test_exact_at_reservoir_capacity_matches_numpy(self):
        from repro.obs.registry import RESERVOIR_SIZE

        rng = np.random.default_rng(5)
        values = rng.exponential(10.0, RESERVOIR_SIZE)
        h = MetricsRegistry().histogram("serve.latency")
        for v in values:
            h.observe(float(v))
        assert h.exact
        for q in (0.5, 0.95, 0.99):
            # rel=1e-12: same order statistics, numpy just associates
            # the interpolation arithmetic differently.
            assert h.quantile(q) == pytest.approx(
                float(np.percentile(values, q * 100,
                                    method="linear")), rel=1e-12)

    def test_exact_flag_flips_past_capacity(self):
        from repro.obs.registry import RESERVOIR_SIZE

        h = MetricsRegistry().histogram("h")
        assert h.exact  # vacuously exact when empty
        for v in range(RESERVOIR_SIZE):
            h.observe(float(v))
        assert h.exact
        h.observe(float(RESERVOIR_SIZE))
        assert not h.exact

    def test_order_independent_at_small_n(self):
        a = MetricsRegistry().histogram("x")
        b = MetricsRegistry().histogram("x")
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for v in values:
            a.observe(v)
        for v in sorted(values):
            b.observe(v)
        for q in (0.25, 0.5, 0.99):
            assert a.quantile(q) == b.quantile(q)


class TestPrometheusExport:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc(42)
        reg.gauge("serve.queue_depth").set(7.5)
        h = reg.histogram("serve.latency_ms")
        for v in (1.0, 2.0, 10.0, 3.5):
            h.observe(v)
        return reg

    def test_round_trip(self):
        from repro.obs.prometheus import (
            parse_prometheus,
            render_prometheus,
        )

        reg = self._registry()
        text = render_prometheus(reg)
        parsed = parse_prometheus(text)
        counter = parsed["serve_requests"]
        assert counter["type"] == "counter"
        assert counter["help"] == "serve.requests"
        assert counter["samples"]["serve_requests"] == 42.0
        gauge = parsed["serve_queue_depth"]
        assert gauge["type"] == "gauge"
        assert gauge["samples"]["serve_queue_depth"] == 7.5
        hist = parsed["serve_latency_ms"]
        assert hist["type"] == "summary"
        h = reg.histogram("serve.latency_ms")
        assert hist["samples"]["serve_latency_ms_count"] == 4.0
        assert hist["samples"]["serve_latency_ms_sum"] == h.total
        for q in (0.5, 0.95, 0.99):
            key = f'serve_latency_ms{{quantile="{q:g}"}}'
            assert hist["samples"][key] == h.quantile(q)

    def test_names_sanitized_to_grammar(self):
        import re

        from repro.obs.prometheus import prometheus_name

        grammar = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
        for raw in ("serve.latency_ms", "moe.expert_ffn",
                    "9starts-with-digit", "weird name!"):
            assert grammar.match(prometheus_name(raw)), raw

    def test_every_line_is_valid_exposition(self):
        from repro.obs.prometheus import render_prometheus

        text = render_prometheus(self._registry())
        assert text.endswith("\n")
        for line in text.splitlines():
            assert line.startswith("#") or " " in line

    def test_parse_rejects_garbage(self):
        from repro.obs.prometheus import parse_prometheus

        with pytest.raises(ValueError):
            parse_prometheus("!!! not prometheus !!!")
        with pytest.raises(ValueError):
            # A sample without its # TYPE header is malformed.
            parse_prometheus("orphan_sample 1.0")

    def test_empty_registry_renders_empty(self):
        from repro.obs.prometheus import (
            parse_prometheus,
            render_prometheus,
        )

        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_hostile_instrument_names_round_trip(self):
        """HELP text escaping per the exposition spec: backslashes
        and newlines must survive render → parse unchanged."""
        from repro.obs.prometheus import (
            parse_prometheus,
            prometheus_name,
            render_prometheus,
        )

        hostile = ['back\\slash.metric', 'multi\nline\nname',
                   'quote"inside', 'all\\three\n"at once']
        reg = MetricsRegistry()
        for name in hostile:
            reg.counter(name).inc(1)
        text = render_prometheus(reg)
        # The document itself must stay line-oriented: no raw newline
        # from a name may split a HELP line.
        assert all(line.startswith("#") or " " in line
                   for line in text.splitlines())
        parsed = parse_prometheus(text)
        helps = {m["help"] for m in parsed.values()}
        for name in hostile:
            assert prometheus_name(name) in parsed
            assert name in helps

    def test_parser_handles_braces_and_escapes_in_label_values(self):
        from repro.obs.prometheus import parse_prometheus

        doc = ('# HELP m a metric\n'
               '# TYPE m gauge\n'
               'm{path="a}b{c,d"} 1.0\n'
               'm{text="esc\\\\aped \\"quo\\"te\\nnewline"} 2.0\n')
        parsed = parse_prometheus(doc)
        samples = parsed["m"]["samples"]
        assert samples['m{path="a}b{c,d"}'] == 1.0
        hostile_key = ('m{text="esc\\aped "quo"te\nnewline"}')
        assert samples[hostile_key] == 2.0

    def test_parser_rejects_unterminated_label_value(self):
        from repro.obs.prometheus import parse_prometheus

        with pytest.raises(ValueError, match="unterminated"):
            parse_prometheus('# TYPE m gauge\nm{path="open 1.0')

    def test_labeled_family_shares_one_head(self):
        from repro.obs.prometheus import (
            labeled_name,
            parse_prometheus,
            render_prometheus,
        )

        reg = MetricsRegistry()
        for sev, v in (("warn", 1.0), ("critical", 0.0)):
            name = labeled_name("ALERTS", {"alertname": "x",
                                           "severity": sev})
            reg.gauge(name).set(v)
        text = render_prometheus(reg)
        assert text.count("# TYPE ALERTS gauge") == 1
        samples = parse_prometheus(text)["ALERTS"]["samples"]
        assert samples[
            'ALERTS{alertname="x",severity="critical"}'] == 0.0
        assert samples['ALERTS{alertname="x",severity="warn"}'] == 1.0

    def test_labeled_name_escapes_hostile_values(self):
        from repro.obs.prometheus import (
            labeled_name,
            parse_prometheus,
            render_prometheus,
        )

        raw = 'ha"s\\esc\npe}s'
        reg = MetricsRegistry()
        reg.gauge(labeled_name("fam", {"k": raw})).set(3.0)
        parsed = parse_prometheus(render_prometheus(reg))
        # The parser re-quotes canonically with the value unescaped.
        assert parsed["fam"]["samples"][f'fam{{k="{raw}"}}'] == 3.0

    def test_stray_brace_names_fall_back_to_sanitization(self):
        from repro.obs.prometheus import (
            parse_prometheus,
            prometheus_name,
            render_prometheus,
        )

        hostile = ["half{open", "not{a=label}", "empty{}",
                   "trail{a=\"v\"}x"]
        reg = MetricsRegistry()
        for name in hostile:
            reg.gauge(name).set(1.0)
        parsed = parse_prometheus(render_prometheus(reg))
        for name in hostile:
            assert prometheus_name(name) in parsed

    def test_routing_totals_are_counters(self):
        """Monotonic routing totals must carry # TYPE counter, not
        gauge (the counter-vs-gauge satellite of the live plane)."""
        from repro.obs import Observer
        from repro.obs.prometheus import render_prometheus
        from repro.obs.routing import record_gauges, synthetic_profile

        ob = Observer()
        record_gauges(ob, synthetic_profile(seed=0), [])
        text = render_prometheus(ob.registry)
        assert "# TYPE routing_tokens counter" in text
        assert "# TYPE routing_dispatched counter" in text
        assert "# TYPE routing_load_gini gauge" in text


class TestFlowEvents:
    def test_flow_chrome_export_carries_id_and_binding(self):
        rec = TraceRecorder()
        rec.span("batch 0", "serve", 0.010, 0.005,
                 track="serve/engine")
        rec.flow("req 3", "serve", "s", 0.001, flow_id=3,
                 track="serve/requests")
        rec.flow("req 3", "serve", "t", 0.005, flow_id=3,
                 track="serve/requests")
        rec.flow("req 3", "serve", "f", 0.010, flow_id=3,
                 track="serve/engine")
        chrome = rec.to_chrome_trace()
        flows = [e for e in chrome["traceEvents"]
                 if e.get("ph") in ("s", "t", "f")]
        assert [e["ph"] for e in flows] == ["s", "t", "f"]
        assert all(e["id"] == 3 for e in flows)
        # Only the finish binds to the enclosing slice.
        assert flows[2]["bp"] == "e"
        assert "bp" not in flows[0] and "bp" not in flows[1]
        # Timestamps convert to microseconds like every other phase.
        assert flows[0]["ts"] == pytest.approx(1e3)

    def test_flow_validates_phase(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            rec.flow("x", "serve", "X", 0.0, flow_id=1)

    def test_flow_jsonl_roundtrip(self):
        rec = TraceRecorder()
        rec.flow("req 1", "serve", "s", 0.25, flow_id=1,
                 track="serve/requests", args={"tokens": 9})
        back = TraceRecorder.loads_jsonl(rec.dumps_jsonl())
        ev = back.events[0]
        assert ev.phase == "s"
        assert ev.args["flow_id"] == 1
        assert ev.args["tokens"] == 9
        assert ev.track == "serve/requests"
