"""Correctness tests for the functional collectives.

The load-bearing assertion: 2DH All-to-All (Algorithm 3) is
byte-identical to linear All-to-All (Algorithm 1) on every world size,
and its intermediate phases match the exact layouts drawn in paper
Figure 15.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.functional import (
    all_to_all_3dh,
    all_gather,
    all_reduce,
    all_to_all_2dh,
    all_to_all_2dh_phases,
    all_to_all_linear,
    flexible_all_to_all,
    reduce_scatter,
    stride_memcpy,
)


def make_world(n, chunk_shape=(3,), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(n, *chunk_shape)) for _ in range(n)]


def tagged_world(n):
    """inputs[src][dst] = 10*src + dst (the Figure 15 labelling)."""
    return [np.array([10 * src + dst for dst in range(n)], dtype=np.int64)
            .reshape(n, 1) for src in range(n)]


class TestLinearA2A:
    def test_transpose_semantics(self):
        world = make_world(4)
        out = all_to_all_linear(world)
        for r in range(4):
            for s in range(4):
                np.testing.assert_array_equal(out[r][s], world[s][r])

    def test_single_rank_identity(self):
        world = make_world(1)
        out = all_to_all_linear(world)
        np.testing.assert_array_equal(out[0], world[0])

    def test_involution(self):
        world = make_world(6)
        twice = all_to_all_linear(all_to_all_linear(world))
        for r in range(6):
            np.testing.assert_array_equal(twice[r], world[r])

    def test_rejects_mismatched_shapes(self):
        world = make_world(4)
        world[2] = world[2][:3]
        with pytest.raises(ValueError):
            all_to_all_linear(world)

    def test_rejects_wrong_leading_dim(self):
        world = [np.zeros((3, 2)) for _ in range(4)]
        with pytest.raises(ValueError):
            all_to_all_linear(world)

    def test_rejects_empty_world(self):
        with pytest.raises(ValueError):
            all_to_all_linear([])


class TestStrideMemcpy:
    def test_grid_transpose(self):
        buf = np.arange(6).reshape(6, 1)
        # viewed as 2x3 (col=2 rows of 3), transposed to 3x2
        out = stride_memcpy(buf, row=3, col=2)
        np.testing.assert_array_equal(out.ravel(), [0, 3, 1, 4, 2, 5])

    def test_double_transpose_identity(self):
        buf = np.arange(24).reshape(24, 1)
        once = stride_memcpy(buf, row=4, col=6)
        twice = stride_memcpy(once, row=6, col=4)
        np.testing.assert_array_equal(twice, buf)

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            stride_memcpy(np.zeros((5, 1)), row=2, col=3)


class TestFigure15Layouts:
    """Phase-by-phase data layouts of the 8-GPU, 2-node example."""

    @pytest.fixture
    def phases(self):
        return all_to_all_2dh_phases(tagged_world(8), gpus_per_node=4)

    def test_phase1_gpu0(self, phases):
        # Figure 15: GPU0 after phase 1 holds 00 04 01 05 02 06 03 07.
        np.testing.assert_array_equal(
            phases[1][0].ravel(), [0, 4, 1, 5, 2, 6, 3, 7])

    def test_phase2_gpu0(self, phases):
        # 00 04 10 14 20 24 30 34
        np.testing.assert_array_equal(
            phases[2][0].ravel(), [0, 4, 10, 14, 20, 24, 30, 34])

    def test_phase3_gpu0(self, phases):
        # 00 10 20 30 04 14 24 34
        np.testing.assert_array_equal(
            phases[3][0].ravel(), [0, 10, 20, 30, 4, 14, 24, 34])

    def test_phase4_gpu0(self, phases):
        # 00 10 20 30 40 50 60 70
        np.testing.assert_array_equal(
            phases[4][0].ravel(), [0, 10, 20, 30, 40, 50, 60, 70])

    def test_phase2_gpu5(self, phases):
        # Figure 15 row GPU5 after phase 2: 41 45 51 55 61 65 71 75.
        np.testing.assert_array_equal(
            phases[2][5].ravel(), [41, 45, 51, 55, 61, 65, 71, 75])

    def test_phase4_gpu7(self, phases):
        # 07 17 27 37 47 57 67 77
        np.testing.assert_array_equal(
            phases[4][7].ravel(), [7, 17, 27, 37, 47, 57, 67, 77])


class Test2DHEquivalence:
    @pytest.mark.parametrize("n,m", [(2, 1), (4, 2), (8, 4), (8, 8),
                                     (16, 4), (16, 8), (32, 8)])
    def test_matches_linear(self, n, m):
        world = make_world(n, chunk_shape=(2, 3), seed=n)
        linear = all_to_all_linear(world)
        hier = all_to_all_2dh(world, gpus_per_node=m)
        for r in range(n):
            np.testing.assert_allclose(hier[r], linear[r])

    def test_rejects_indivisible_world(self):
        with pytest.raises(ValueError):
            all_to_all_2dh(make_world(6), gpus_per_node=4)

    @settings(max_examples=25, deadline=None)
    @given(nodes=st.integers(1, 4), m=st.sampled_from([1, 2, 4]),
           payload=st.integers(1, 5))
    def test_property_matches_linear(self, nodes, m, payload):
        n = nodes * m
        world = make_world(n, chunk_shape=(payload,), seed=n + payload)
        linear = all_to_all_linear(world)
        hier = all_to_all_2dh(world, gpus_per_node=m)
        for r in range(n):
            np.testing.assert_allclose(hier[r], linear[r])


class TestFlexibleA2A:
    """Table 3 layout semantics."""

    def test_dispatch_layout(self):
        # (E, dC, M) -> (dE, C, M) with E=4, dC=3, M=2, W=4.
        w, e, dc, m = 4, 4, 3, 2
        rng = np.random.default_rng(0)
        world = [rng.normal(size=(e, dc, m)) for _ in range(w)]
        out = flexible_all_to_all(world, concat_dim=1, split_dim=0)
        assert out[0].shape == (e // w, w * dc, m)

    def test_combine_inverts_dispatch(self):
        w, e, dc, m = 4, 8, 3, 2
        rng = np.random.default_rng(1)
        world = [rng.normal(size=(e, dc, m)) for _ in range(w)]
        dispatched = flexible_all_to_all(world, concat_dim=1, split_dim=0)
        combined = flexible_all_to_all(dispatched, concat_dim=0,
                                       split_dim=1)
        for r in range(w):
            np.testing.assert_allclose(combined[r], world[r])

    def test_expert_slices_routed_correctly(self):
        # Rank r must receive expert slice [r*dE, (r+1)*dE) from all.
        w, e, dc, m = 2, 4, 1, 1
        world = [np.arange(e * dc * m, dtype=float).reshape(e, dc, m)
                 + 100 * r for r in range(w)]
        out = flexible_all_to_all(world, concat_dim=1, split_dim=0)
        # Rank 1 gets experts 2,3 of rank 0 then of rank 1, along C.
        np.testing.assert_allclose(out[1][:, 0, 0], [2, 3])
        np.testing.assert_allclose(out[1][:, 1, 0], [102, 103])

    def test_matches_plain_a2a_reshaped(self):
        # flex_all2all(x, 1, 0) equals the plain A2A output
        # (W, dE, dC, M) re-laid-out to (dE, W*dC, M).
        w, e, dc, m = 4, 8, 2, 3
        de = e // w
        rng = np.random.default_rng(2)
        world = [rng.normal(size=(e, dc, m)) for _ in range(w)]
        flex = flexible_all_to_all(world, concat_dim=1, split_dim=0)
        plain = all_to_all_linear([x.reshape(w, de, dc, m)
                                   for x in world])
        for r in range(w):
            expected = plain[r].transpose(1, 0, 2, 3).reshape(de,
                                                              w * dc, m)
            np.testing.assert_allclose(flex[r], expected)

    def test_rejects_indivisible_split(self):
        world = [np.zeros((3, 2, 2)) for _ in range(2)]
        with pytest.raises(ValueError):
            flexible_all_to_all(world, concat_dim=1, split_dim=0)

    def test_rejects_bad_dims(self):
        world = [np.zeros((4, 2)) for _ in range(2)]
        with pytest.raises(ValueError):
            flexible_all_to_all(world, concat_dim=5, split_dim=0)


class TestRingCollectives:
    def test_all_gather(self):
        world = [np.full((2, 2), r, dtype=float) for r in range(3)]
        out = all_gather(world)
        assert out[0].shape == (6, 2)
        for r in range(3):
            np.testing.assert_allclose(out[r], out[0])

    def test_reduce_scatter_sums(self):
        world = [np.ones((4, 2)) * (r + 1) for r in range(2)]
        out = reduce_scatter(world)
        assert out[0].shape == (2, 2)
        np.testing.assert_allclose(out[0], 3.0)

    def test_all_reduce(self):
        world = [np.ones((3,)) * r for r in range(4)]
        out = all_reduce(world)
        for r in range(4):
            np.testing.assert_allclose(out[r], 6.0)

    def test_reduce_scatter_then_gather_is_allreduce(self):
        rng = np.random.default_rng(3)
        world = [rng.normal(size=(4, 3)) for _ in range(4)]
        rs = reduce_scatter(world)
        ag = all_gather(rs)
        ar = all_reduce(world)
        for r in range(4):
            np.testing.assert_allclose(ag[r], ar[r])

    def test_reduce_scatter_rejects_indivisible(self):
        with pytest.raises(ValueError):
            reduce_scatter([np.zeros((3, 2)) for _ in range(2)])


class Test3DH:
    @pytest.mark.parametrize("n,m,g", [(8, 2, 2), (16, 4, 2),
                                       (32, 4, 2), (32, 2, 4),
                                       (64, 4, 4)])
    def test_matches_linear(self, n, m, g):
        world = make_world(n, chunk_shape=(2,), seed=n + m + g)
        linear = all_to_all_linear(world)
        hier = all_to_all_3dh(world, gpus_per_node=m, nodes_per_group=g)
        for r in range(n):
            np.testing.assert_allclose(hier[r], linear[r])

    def test_degenerate_single_group(self):
        # One group covering the world: 3DH reduces to (aligned) 2DH.
        world = make_world(8, seed=7)
        linear = all_to_all_linear(world)
        hier = all_to_all_3dh(world, gpus_per_node=2, nodes_per_group=4)
        for r in range(8):
            np.testing.assert_allclose(hier[r], linear[r])

    def test_rejects_indivisible_group(self):
        with pytest.raises(ValueError):
            all_to_all_3dh(make_world(12), gpus_per_node=4,
                           nodes_per_group=2)

    @settings(max_examples=15, deadline=None)
    @given(groups=st.integers(1, 3), g=st.sampled_from([2, 4]),
           m=st.sampled_from([2, 4]))
    def test_property_matches_linear(self, groups, g, m):
        n = groups * g * m
        world = make_world(n, chunk_shape=(1,), seed=n)
        linear = all_to_all_linear(world)
        hier = all_to_all_3dh(world, gpus_per_node=m, nodes_per_group=g)
        for r in range(n):
            np.testing.assert_allclose(hier[r], linear[r])
