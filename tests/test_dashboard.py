"""Tests for the zero-dependency HTML dashboard (repro.obs.dashboard)."""

from html.parser import HTMLParser

import pytest

from repro.obs.dashboard import (
    build_series,
    render_dashboard,
    write_dashboard,
)
from repro.obs.runs import RunStore, RunWriter

_VOID_TAGS = {"br", "hr", "img", "input", "meta", "link"}


class WellFormedChecker(HTMLParser):
    """Asserts tags nest properly and close in order (SVG included)."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.errors: list[str] = []
        self.tag_counts: dict[str, int] = {}

    def handle_starttag(self, tag, attrs):
        self.tag_counts[tag] = self.tag_counts.get(tag, 0) + 1
        if tag not in _VOID_TAGS:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        self.tag_counts[tag] = self.tag_counts.get(tag, 0) + 1

    def handle_endtag(self, tag):
        if tag in _VOID_TAGS:
            return
        if not self.stack:
            self.errors.append(f"closing </{tag}> with empty stack")
        elif self.stack[-1] != tag:
            self.errors.append(
                f"closing </{tag}> but open is <{self.stack[-1]}>")
        else:
            self.stack.pop()


def check_well_formed(doc: str) -> WellFormedChecker:
    parser = WellFormedChecker()
    parser.feed(doc)
    parser.close()
    assert parser.errors == [], parser.errors
    assert parser.stack == [], f"unclosed tags: {parser.stack}"
    return parser


def populate_run(root, run_id="r1", created_at=1.0, seed=0,
                 with_alerts=True):
    writer = RunWriter.create(root=root, run_id=run_id, seed=seed,
                              config={"kind": "train"},
                              created_at=created_at)
    writer.emit("train_begin", data={"steps": 6, "start_step": 0,
                                     "seed": seed})
    for step in range(6):
        writer.begin_step(step)
        writer.emit("routing", data={
            "layer": 0, "entropy": 0.9 - 0.1 * step,
            "gini": 0.1 + 0.05 * step, "dropped_fraction": 0.0,
            "needed_capacity_factor": 1.0,
            "expert_load": [16, 20, 12, 16]})
        writer.emit("step", data={"loss": 2.0 - 0.2 * step,
                                  "accuracy": 0.3 + 0.1 * step,
                                  "grad_norm": 1.0})
    if with_alerts:
        writer.emit("fault", step=3, data={"kind": "expert_failure",
                                           "expert": 2})
        writer.emit("alert", step=4, data={
            "kind": "dead_expert", "step": 4, "severity": "critical",
            "value": 0.0, "threshold": 1.6, "layer": 0, "expert": 2,
            "message": "expert 2 starved"})
        writer.emit("alert", step=5, data={
            "kind": "entropy_drift", "step": 5, "severity": "warn",
            "value": 0.4, "threshold": -4.0, "layer": 0,
            "expert": None, "message": "entropy drop"})
    writer.emit("eval", step=-1, data={"accuracy": 0.75})
    writer.finalize(summary={"final_train_loss": 1.0,
                             "eval_accuracy": 0.75})
    return writer


def populate_profiled_run(root, run_id="p1"):
    """A run carrying an op-level profiler summary event."""
    writer = RunWriter.create(root=root, run_id=run_id, seed=0,
                              config={"kind": "profile"},
                              created_at=2.0)
    writer.emit("profile", data={
        "target": "step",
        "totals": {"ops": 68, "flops": 1.27e7, "bytes_read": 3.5e6,
                   "bytes_written": 3.5e6, "wall": 0.012,
                   "arithmetic_intensity": 1.8},
        "peak_bytes": 2_046_384,
        "by_stage": {
            "expert_ffn": {"count": 6, "flops": 8.5e6,
                           "bytes_read": 1.4e6, "bytes_written": 1.4e6,
                           "wall": 0.008},
            "gate": {"count": 14, "flops": 2.2e5, "bytes_read": 1e5,
                     "bytes_written": 1e5, "wall": 0.0006},
            "other": {"count": 44, "flops": 3.9e6, "bytes_read": 1.5e6,
                      "bytes_written": 1.5e6, "wall": 0.003}},
        "by_phase": {},
        "alloc_timeline": [[0, 1024, "forward", "other"],
                           [1, 409600, "forward", "gate"],
                           [2, 2046384, "backward", "expert_ffn"],
                           [3, 8192, "backward", "other"]]})
    writer.finalize(summary={"profile.peak_bytes": 2_046_384.0})
    return writer


class TestBuildSeries:
    def test_folds_stream_into_series(self, tmp_path):
        populate_run(tmp_path)
        series = build_series(RunStore(tmp_path).events("r1"))
        assert series.steps == list(range(6))
        assert series.loss[0] == pytest.approx(2.0)
        assert series.layers == [0]
        assert len(series.entropy[0]) == 6
        assert series.expert_load[0][0] == [16, 20, 12, 16]
        assert [a["kind"] for a in series.alerts] == [
            "dead_expert", "entropy_drift"]
        assert [t["kind"] for t in series.timeline] == ["fault"]
        assert series.timeline[0]["what"] == "expert_failure"
        assert series.evals == [{"accuracy": 0.75}]

    def test_profile_event_last_wins(self):
        series = build_series([
            {"kind": "profile", "step": None,
             "data": {"peak_bytes": 100}},
            {"kind": "profile", "step": None,
             "data": {"peak_bytes": 250,
                      "totals": {"flops": 1e6}}},
        ])
        assert series.profile == {"peak_bytes": 250,
                                  "totals": {"flops": 1e6}}

    def test_negative_step_routing_excluded(self):
        series = build_series([
            {"kind": "routing", "step": -1, "data": {"layer": 0}},
            {"kind": "routing", "step": 2,
             "data": {"layer": 0, "entropy": 0.5}},
        ])
        assert series.routing_steps[0] == [2]

    def test_empty_stream(self):
        series = build_series([])
        assert series.steps == [] and series.layers == []


class TestRenderDashboard:
    def test_well_formed_with_all_panels(self, tmp_path):
        populate_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "r1")
        parser = check_well_formed(doc)
        assert doc.lstrip().startswith("<!DOCTYPE html>")
        assert parser.tag_counts.get("svg", 0) >= 3  # loss/entropy/gini
        assert parser.tag_counts.get("rect", 0) >= 24  # 4x6 heatmap
        # no external resources: self-contained single file
        assert "http://" not in doc and "https://" not in doc
        assert "<script src" not in doc and "<link" not in doc

    def test_alert_markers_and_severity_labels(self, tmp_path):
        populate_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "latest")
        assert "status-critical" in doc
        assert "dead_expert" in doc and "entropy_drift" in doc
        # status is never color-alone: glyph+word labels present
        assert "critical" in doc and "warning" in doc

    def test_profile_panels_render_self_contained(self, tmp_path):
        populate_profiled_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "p1")
        parser = check_well_formed(doc)
        assert "live tensor bytes" in doc     # allocation timeline
        assert "FLOP share by MoE stage" in doc
        assert "peak memory" in doc           # memory tile
        assert "2.0 MiB" in doc               # human-readable bytes
        assert "expert_ffn" in doc and "gate" in doc
        # share bars + timeline each contribute an svg
        assert parser.tag_counts.get("svg", 0) >= 2
        assert "http://" not in doc and "https://" not in doc

    def test_profile_share_bars_carry_percentages(self, tmp_path):
        populate_profiled_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "p1")
        # the dominant stage's share is printed as text, not only ink:
        # 8.5e6 of 12.61e6 total flops ~= 67.4%
        assert "67.4%" in doc

    def test_run_without_profile_omits_panels(self, tmp_path):
        populate_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "r1")
        assert "FLOP share by MoE stage" not in doc
        assert "live tensor bytes" not in doc

    def test_header_carries_manifest_fields(self, tmp_path):
        populate_run(tmp_path, seed=42)
        doc = render_dashboard(RunStore(tmp_path))
        assert "r1" in doc and "42" in doc

    def test_dark_mode_and_custom_properties(self, tmp_path):
        populate_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path))
        assert "prefers-color-scheme: dark" in doc
        assert "--series-1" in doc

    def test_empty_run_renders(self, tmp_path):
        writer = RunWriter.create(root=tmp_path, run_id="empty",
                                  created_at=1.0)
        writer.finalize()
        doc = render_dashboard(RunStore(tmp_path), "empty")
        check_well_formed(doc)
        assert "no training steps recorded" in doc
        assert "no health alerts raised" in doc

    def test_html_escaping_of_untrusted_fields(self, tmp_path):
        writer = RunWriter.create(
            root=tmp_path, run_id="esc", created_at=1.0,
            config={"note": "<script>alert(1)</script>"})
        writer.emit("alert", step=0, data={
            "kind": "entropy_drift", "step": 0, "severity": "warn",
            "value": 0.1, "threshold": 0.5, "layer": 0,
            "expert": None, "message": "<img src=x onerror=y>"})
        writer.finalize()
        doc = render_dashboard(RunStore(tmp_path), "esc")
        check_well_formed(doc)
        assert "<script>alert(1)</script>" not in doc
        assert "<img src=x" not in doc

    def test_unknown_run_raises(self, tmp_path):
        populate_run(tmp_path)
        with pytest.raises(KeyError):
            render_dashboard(RunStore(tmp_path), "nope")

    def test_refresh_embeds_meta_tag(self, tmp_path):
        populate_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "r1", refresh=5)
        check_well_formed(doc)
        assert '<meta http-equiv="refresh" content="5">' in doc
        plain = render_dashboard(RunStore(tmp_path), "r1")
        assert 'http-equiv="refresh"' not in plain

    def test_single_point_series_renders_a_dot(self, tmp_path):
        # A run with exactly one step: the line charts have one data
        # point, which a polyline cannot show — a dot must appear.
        writer = RunWriter.create(root=tmp_path, run_id="one",
                                  created_at=1.0, seed=0)
        writer.begin_step(0)
        writer.emit("step", data={"loss": 1.5, "accuracy": 0.5,
                                  "grad_norm": 1.0})
        writer.finalize(summary={})
        doc = render_dashboard(RunStore(tmp_path), "one")
        check_well_formed(doc)
        assert 'r="3" fill="var(--series-1)"' in doc


def populate_scenario_run(root, run_id="s1", all_pass=False):
    """A run shaped like the scenario engine's output stream."""
    writer = RunWriter.create(root=root, run_id=run_id, seed=11,
                              config={"kind": "scenario",
                                      "name": "rank_loss_deadline"},
                              created_at=3.0)
    writer.emit("scenario", step=0, data={
        "kind": "begin", "name": "rank_loss_deadline", "seed": 11})
    for step in range(4):
        writer.begin_step(step)
        writer.emit("step", data={"loss": 2.0 - 0.1 * step,
                                  "accuracy": 0.4, "grad_norm": 1.0})
    writer.emit("fault", step=2, data={"kind": "rank_failure",
                                       "ranks": [3]})
    writer.emit("recovery", step=2, data={
        "kind": "strategy_reselection", "strategy": "ep",
        "a2a": "linear", "world": 8, "slowdown": 1.2})
    writer.emit("scenario", step=3, data={
        "kind": "elastic_resize", "old_world": 16, "new_world": 32})
    writer.emit("slo_check", step=-1, data={
        "name": "recovery_deadline_0", "value": 0.02, "bound": 20.0,
        "op": "<=", "measured": True, "passed": True})
    writer.emit("slo_check", step=-1, data={
        "name": "final_loss_max", "value": 3.5, "bound": 3.0,
        "op": "<=", "measured": False,
        "passed": all_pass})
    writer.finalize(summary={"scenario": "rank_loss_deadline",
                             "passed": all_pass})
    return writer


class TestScenarioPanels:
    def test_slo_checks_folded_into_series(self, tmp_path):
        populate_scenario_run(tmp_path)
        series = build_series(RunStore(tmp_path).events("s1"))
        assert [c["name"] for c in series.slo_checks] == [
            "recovery_deadline_0", "final_loss_max"]
        # "scenario" events join the fault/recovery timeline
        # (including the step-0 begin marker).
        kinds = [t["kind"] for t in series.timeline]
        assert kinds == ["scenario", "fault", "recovery", "scenario"]
        assert series.timeline[0]["what"] == "begin"
        assert series.timeline[-1]["what"] == "elastic_resize"

    def test_slo_table_renders_verdicts(self, tmp_path):
        populate_scenario_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "s1")
        check_well_formed(doc)
        assert "scenario SLO report" in doc
        assert "recovery_deadline_0" in doc
        assert "final_loss_max" in doc
        # one passing wall-clock check, one failing model check
        assert "wall-clock" in doc
        assert "pass" in doc and "fail" in doc
        # the tile summarizes the verdict count
        assert "SLO checks" in doc and "1/2" in doc
        assert "1 failed" in doc

    def test_all_pass_tile(self, tmp_path):
        populate_scenario_run(tmp_path, run_id="s2", all_pass=True)
        doc = render_dashboard(RunStore(tmp_path), "s2")
        assert "2/2" in doc and "all pass" in doc

    def test_run_without_slo_checks_omits_panel(self, tmp_path):
        populate_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "r1")
        assert "scenario SLO report" not in doc
        assert "SLO checks" not in doc


class TestWriteDashboard:
    def test_writes_file(self, tmp_path):
        populate_run(tmp_path / "runs")
        out = write_dashboard(RunStore(tmp_path / "runs"), "latest",
                              tmp_path / "out" / "dash.html")
        assert out.is_file()
        check_well_formed(out.read_text())

    def test_threads_refresh_through(self, tmp_path):
        populate_run(tmp_path / "runs")
        out = write_dashboard(RunStore(tmp_path / "runs"), "latest",
                              tmp_path / "out" / "dash.html",
                              refresh=30)
        assert ('<meta http-equiv="refresh" content="30">'
                in out.read_text())


def populate_serving_run(root, run_id="s1"):
    """A run carrying the serving engine's event stream."""
    writer = RunWriter.create(root=root, run_id=run_id, seed=0,
                              config={"kind": "serve",
                                      "workload": "poisson_steady"},
                              created_at=3.0)
    writer.emit("serve", step=0, data={
        "kind": "begin", "workload": "poisson_steady", "seed": 0,
        "fast": True, "requests": 12, "horizon_s": 1.0})
    for i in range(4):
        writer.emit("serve_batch", step=i, data={
            "batch": i, "close_ms": 10.0 * (i + 1), "size": 3,
            "tokens": 48, "queue_depth": i,
            "service_model_ms": 12.0, "service_measured_ms": 1.0,
            "model_walls_ns": {"gate": 1, "dispatch": 2, "expert": 3,
                               "combine": 4},
            "p50_ms": 15.0 + i, "p95_ms": 25.0 + i,
            "p99_ms": 30.0 + i, "brownout": i == 2})
    writer.emit("serving_load", step=None, data={
        "workload": "poisson_steady",
        "loads": [[4, 8, 2, 2], [3, 3, 5, 5]], "gini": 0.25,
        "dropped_fraction": 0.0,
        "span_totals_ns": {"queue": 100, "batch_wait": 300,
                           "gate": 50, "dispatch": 90, "expert": 400,
                           "combine": 60}})
    writer.emit("slo_check", step=-1, data={
        "name": "poisson_steady.model_p99_ms", "value": 33.0,
        "bound": 80.0, "op": "<=", "measured": False, "passed": True})
    writer.finalize(summary={"serve.workload": "poisson_steady",
                             "serve.requests": 12,
                             "serve.model_p99_ms": 33.0,
                             "serve.slo_pass": True})
    return writer


class TestServingPanels:
    def test_serving_events_folded_into_series(self, tmp_path):
        populate_serving_run(tmp_path)
        series = build_series(RunStore(tmp_path).events("s1"))
        assert series.serve_begin["workload"] == "poisson_steady"
        assert len(series.serve_batches) == 4
        assert series.serve_batches[-1]["p99_ms"] == 33.0
        assert series.serving_load["gini"] == 0.25
        assert series.slo_checks[0]["passed"] is True

    def test_serving_panels_render(self, tmp_path):
        populate_serving_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "s1")
        check_well_formed(doc)
        # Latency percentile sparklines, queue-depth timeline, and
        # per-stage share bars, plus the summary tiles.
        for needle in ("rolling model p50 latency",
                       "rolling model p95 latency",
                       "rolling model p99 latency",
                       "queue depth at batch close",
                       "latency share by stage",
                       "requests served", "model p99",
                       "max queue depth"):
            assert needle in doc, needle
        # All six ledger stages appear in the share bars.
        for stage in ("queue", "batch_wait", "gate", "dispatch",
                      "expert", "combine"):
            assert stage in doc, stage
        # The brownout transition is flagged on the sparkline.
        assert "brownout begins" in doc

    def test_run_without_serving_omits_panels(self, tmp_path):
        populate_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "r1")
        assert "rolling model p99" not in doc
        assert "requests served" not in doc

    def test_real_serving_run_renders_end_to_end(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        from repro.serve import get_workload, serve_workload
        res = serve_workload(get_workload("poisson_steady"),
                             fast=True, seed=0)
        assert res.run_id is not None
        doc = render_dashboard(RunStore(tmp_path), res.run_id)
        check_well_formed(doc)
        assert "latency share by stage" in doc


def populate_routing_run(root, run_id="rt1", *, zero_affinity=False,
                         empty_loads=False, steps=4):
    """A run carrying routing-provenance events (running totals, as
    the recorder emits them), with switches for the degenerate shapes
    the panels must survive."""
    writer = RunWriter.create(root=root, run_id=run_id, seed=0,
                              config={"kind": "train"}, created_at=3.0)
    num_experts, num_layers, buckets = 4, 2, 16
    for step in range(steps):
        writer.begin_step(step)
        scale = 0 if empty_loads else step + 1
        loads = [[scale * (e + 1) for e in range(num_experts)]
                 for _ in range(num_layers)]
        dispatched = [[[scale if b < 4 else 0
                        for _ in range(num_experts)]
                       for b in range(buckets)]
                      for _ in range(num_layers)]
        transitions = [[[0 if zero_affinity else scale
                         for _ in range(num_experts)]
                        for _ in range(num_experts)]]
        writer.emit("routing", data={
            "layer": 0, "entropy": 0.9, "gini": 0.1,
            "dropped_fraction": 0.0, "needed_capacity_factor": 1.0,
            "expert_load": [] if empty_loads
            else [8] * num_experts})
        writer.emit("step", data={"loss": 1.0, "accuracy": 0.5,
                                  "grad_norm": 1.0})
        writer.emit("routing_load", step=step, data={
            "schema": 1, "num_layers": num_layers,
            "num_experts": num_experts, "src_buckets": buckets,
            "batches": step + 1, "tokens": 32 * (step + 1),
            "loads": loads, "dispatched": dispatched})
        writer.emit("routing_affinity", step=step, data={
            "schema": 1, "num_layers": num_layers,
            "num_experts": num_experts, "batches": step + 1,
            "tokens": 32 * (step + 1), "transitions": transitions})
    writer.finalize(summary={"final_train_loss": 1.0})
    return writer


class TestRoutingPanels:
    def test_routing_events_folded_into_series(self, tmp_path):
        populate_routing_run(tmp_path)
        series = build_series(RunStore(tmp_path).events("rt1"))
        # Running totals: the last payload wins.
        assert series.routing_load["batches"] == 4
        assert series.routing_affinity["tokens"] == 128

    def test_affinity_heatmap_and_hop_breakdown_render(self, tmp_path):
        populate_routing_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "rt1")
        check_well_formed(doc)
        assert "inter-layer expert affinity" in doc
        assert "token-hop locality" in doc
        assert "intra-GPU" in doc and "inter-node" in doc
        assert "dispatched slots" in doc

    def test_all_zero_affinity_matrix_renders(self, tmp_path):
        populate_routing_run(tmp_path, zero_affinity=True)
        doc = render_dashboard(RunStore(tmp_path), "rt1")
        check_well_formed(doc)
        assert "inter-layer expert affinity" in doc

    def test_empty_expert_load_rows_render(self, tmp_path):
        populate_routing_run(tmp_path, empty_loads=True)
        doc = render_dashboard(RunStore(tmp_path), "rt1")
        check_well_formed(doc)
        assert "no expert-load records" in doc

    def test_single_step_run_renders(self, tmp_path):
        populate_routing_run(tmp_path, steps=1)
        doc = render_dashboard(RunStore(tmp_path), "rt1")
        check_well_formed(doc)
        assert "inter-layer expert affinity" in doc

    def test_run_without_routing_omits_panels(self, tmp_path):
        populate_run(tmp_path)
        doc = render_dashboard(RunStore(tmp_path), "r1")
        assert "inter-layer expert affinity" not in doc
        assert "token-hop locality" not in doc

    def test_real_training_run_renders_routing_panels(self, tmp_path):
        import numpy as np

        from repro.nn.models import MoEClassifier
        from repro.obs.runs import recording_run
        from repro.train.data import ClusteredTokenTask
        from repro.train.trainer import train_model

        task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                  num_classes=4, noise=0.4, seed=0)
        # num_blocks=4 → two MoE layers (odd blocks), so the run has
        # an inter-layer transition pair to draw.
        model = MoEClassifier(input_dim=8, model_dim=32,
                              hidden_dim=64, num_classes=4,
                              num_blocks=4, num_experts=8,
                              rng=np.random.default_rng(0), top_k=2,
                              capacity_factor=1.25)
        with recording_run(root=tmp_path, run_id="real",
                           config={"kind": "train"}, seed=0):
            train_model(model, task.sample(256), task.sample(64),
                        steps=2, batch_size=64)
        doc = render_dashboard(RunStore(tmp_path), "real")
        check_well_formed(doc)
        assert "inter-layer expert affinity" in doc
        assert "token-hop locality" in doc
