"""Tests for the SwinV2-MoE workload model against the paper's tables."""

import pytest

from repro.models.swin import (
    SWINV2_B,
    SWINV2_S,
    SWINV2_THIN_TINY,
    inference_gflops,
    moe_parameter_count,
    swinv2_moe_speed,
)
from repro.runtime.plan import FAIRSEQ_FEATURES, TUTEL_FEATURES


class TestGeometry:
    def test_ten_moe_layers(self):
        # "10 total MoE layers in the model" (Figure 1 caption).
        assert len(SWINV2_B.moe_layer_plan()) == 10
        assert len(SWINV2_S.moe_layer_plan()) == 10

    def test_stage_dims_double(self):
        assert SWINV2_B.stage_dims == (128, 256, 512, 1024)

    def test_stage_tokens_at_192(self):
        assert SWINV2_B.stage_tokens == (48 ** 2, 24 ** 2, 12 ** 2, 6 ** 2)

    def test_moe_layers_in_late_stages_only(self):
        stages = {stage for stage, _, _ in SWINV2_B.moe_layer_plan()}
        assert stages == {2, 3}

    def test_thin_tiny_smaller(self):
        assert SWINV2_THIN_TINY.embed_dim < SWINV2_S.embed_dim


class TestParameterCounts:
    @pytest.mark.parametrize("variant,e,paper_m", [
        (SWINV2_S, 8, 173.3), (SWINV2_S, 16, 296.1),
        (SWINV2_S, 32, 541.8), (SWINV2_S, 64, 1033.0),
        (SWINV2_S, 128, 2016.0),
        (SWINV2_B, 8, 300.3), (SWINV2_B, 16, 518.7),
        (SWINV2_B, 32, 955.3),
    ])
    def test_table11_param_column(self, variant, e, paper_m):
        measured = moe_parameter_count(variant, e) / 1e6
        assert measured == pytest.approx(paper_m, rel=0.02)

    def test_one_expert_equals_dense(self):
        assert moe_parameter_count(SWINV2_B, 1) == SWINV2_B.dense_params

    def test_rejects_zero_experts(self):
        with pytest.raises(ValueError):
            moe_parameter_count(SWINV2_B, 0)


class TestGflops:
    @pytest.mark.parametrize("k,f,paper", [
        (1, 1.25, 12.54), (1, 1.0, 11.78), (1, 0.625, 10.65),
        (1, 0.5, 10.27), (2, 1.25, 16.31), (2, 1.0, 14.80),
        (2, 0.625, 12.54), (2, 0.5, 11.78),
    ])
    def test_table12_gflops_column(self, k, f, paper):
        assert inference_gflops(SWINV2_B, k, f) == pytest.approx(
            paper, rel=0.02)

    def test_k1_f1_equals_dense(self):
        assert inference_gflops(SWINV2_B, 1, 1.0) == pytest.approx(
            SWINV2_B.dense_gflops)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            inference_gflops(SWINV2_B, 0, 1.0)
        with pytest.raises(ValueError):
            inference_gflops(SWINV2_B, 1, 0.0)


class TestSpeedEstimates:
    def test_tutel_faster_than_fairseq(self):
        for world in (8, 32, 128):
            fair = swinv2_moe_speed(SWINV2_B, FAIRSEQ_FEATURES,
                                    world=world)
            tutel = swinv2_moe_speed(SWINV2_B, TUTEL_FEATURES,
                                     world=world)
            assert tutel.train_rate > fair.train_rate
            assert tutel.infer_rate > fair.infer_rate

    def test_table8_band(self):
        # Paper: train speedup 1.14-1.55x, inference 1.95-2.11x.
        fair = swinv2_moe_speed(SWINV2_B, FAIRSEQ_FEATURES, world=128)
        tutel = swinv2_moe_speed(SWINV2_B, TUTEL_FEATURES, world=128)
        assert 1.05 < tutel.train_rate / fair.train_rate < 2.2
        assert 1.2 < tutel.infer_rate / fair.infer_rate < 3.0

    def test_moe_slower_than_dense(self):
        tutel = swinv2_moe_speed(SWINV2_B, TUTEL_FEATURES, world=8)
        assert tutel.train_rate <= SWINV2_B.dense_train_rate
        assert tutel.infer_rate <= SWINV2_B.dense_infer_rate

    def test_breakdowns_per_layer(self):
        speed = swinv2_moe_speed(SWINV2_B, TUTEL_FEATURES, world=8)
        assert len(speed.breakdowns) == 10


class TestComputedGflops:
    def test_matches_paper_anchors(self):
        # Geometry-derived MACs vs the paper's Table 11 GFLOPs column.
        assert SWINV2_B.computed_dense_gflops() == pytest.approx(
            11.78, rel=0.01)
        assert SWINV2_S.computed_dense_gflops() == pytest.approx(
            6.76, rel=0.01)

    def test_scales_with_resolution(self):
        import dataclasses
        big = dataclasses.replace(SWINV2_B, input_resolution=384)
        assert big.computed_dense_gflops() > \
            3.5 * SWINV2_B.computed_dense_gflops()

    def test_moe_ffn_is_fraction_of_dense(self):
        moe_part = SWINV2_B.moe_ffn_gflops()
        assert 0.1 < moe_part / SWINV2_B.computed_dense_gflops() < 0.5
