"""Dense vs sparse encode/decode equivalence and gradient checks.

The core correctness claim of Section 4.2: the sparse O(T*k*M)
implementation computes exactly what the dense O(T*E*dC*M) einsum does.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.moe.encode import (
    DispatchBufferPool,
    dense_combine_weights,
    dense_decode,
    dense_dispatch_mask,
    dense_encode,
    fast_decode,
    fast_decode_backward,
    fast_encode,
    fast_encode_backward,
)
from repro.moe.gating import softmax, top_k_routing


def random_case(t=32, e=8, m=16, k=2, capacity=None, seed=0,
                drop_some=False):
    rng = np.random.default_rng(seed)
    probs = softmax(rng.normal(size=(t, e)))
    cap = capacity or (2 if drop_some else t)
    crit = top_k_routing(probs, k, capacity=cap)
    x = rng.normal(size=(t, m))
    z = rng.normal(size=(e, crit.capacity, m))
    return x, z, crit


class TestDenseSparseEquivalence:
    def test_encode_matches(self):
        x, _, crit = random_case()
        np.testing.assert_allclose(fast_encode(x, crit),
                                   dense_encode(x, crit))

    def test_decode_matches(self):
        _, z, crit = random_case()
        np.testing.assert_allclose(fast_decode(z, crit),
                                   dense_decode(z, crit))

    def test_encode_matches_with_drops(self):
        x, _, crit = random_case(drop_some=True)
        assert crit.dropped_fraction() > 0
        np.testing.assert_allclose(fast_encode(x, crit),
                                   dense_encode(x, crit))

    def test_decode_matches_with_drops(self):
        _, z, crit = random_case(drop_some=True)
        np.testing.assert_allclose(fast_decode(z, crit),
                                   dense_decode(z, crit))

    @settings(max_examples=30, deadline=None)
    @given(t=st.integers(2, 40), e=st.integers(2, 8),
           m=st.integers(1, 12), k=st.integers(1, 3),
           cap=st.integers(1, 16), seed=st.integers(0, 100))
    def test_property_equivalence(self, t, e, m, k, cap, seed):
        if k > e:
            return
        x, z, crit = random_case(t, e, m, k, capacity=cap, seed=seed)
        np.testing.assert_allclose(fast_encode(x, crit),
                                   dense_encode(x, crit), atol=1e-12)
        np.testing.assert_allclose(fast_decode(z, crit),
                                   dense_decode(z, crit), atol=1e-12)

    def test_roundtrip_identity_weights(self):
        # With k=1, unnormalized gates, capacity >= T and gate value g,
        # decode(encode(x)) returns g * x for surviving tokens.
        rng = np.random.default_rng(3)
        probs = softmax(rng.normal(size=(16, 4)))
        crit = top_k_routing(probs, 1, capacity=16,
                             normalize_gate=False)
        x = rng.normal(size=(16, 8))
        out = fast_decode(fast_encode(x, crit), crit)
        np.testing.assert_allclose(out, crit.gates[0][:, None] * x)


class TestDenseTensors:
    def test_combine_weights_shape(self):
        _, _, crit = random_case()
        cw = dense_combine_weights(crit)
        assert cw.shape == (crit.num_tokens, crit.num_experts,
                            crit.capacity)

    def test_combine_weights_sparsity(self):
        _, _, crit = random_case(t=32, k=2)
        cw = dense_combine_weights(crit)
        assert (cw > 0).sum() == crit.valid.sum()

    def test_dispatch_mask_boolean(self):
        _, _, crit = random_case()
        assert dense_dispatch_mask(crit).dtype == bool

    def test_each_cell_holds_one_token(self):
        _, _, crit = random_case(t=64, k=2)
        mask = dense_dispatch_mask(crit)
        assert (mask.sum(axis=0) <= 1).all()


class TestSparseBackward:
    def test_encode_backward_numeric(self):
        x, _, crit = random_case(t=10, e=4, m=5, k=2, seed=7)
        grad_out = np.random.default_rng(8).normal(
            size=(crit.num_experts, crit.capacity, 5))
        analytic = fast_encode_backward(grad_out, crit)
        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                xp, xm = x.copy(), x.copy()
                xp[i, j] += eps
                xm[i, j] -= eps
                fp = np.sum(fast_encode(xp, crit) * grad_out)
                fm = np.sum(fast_encode(xm, crit) * grad_out)
                numeric[i, j] = (fp - fm) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_decode_backward_wrt_z_numeric(self):
        _, z, crit = random_case(t=8, e=3, m=4, k=2, seed=9)
        grad_out = np.random.default_rng(10).normal(
            size=(crit.num_tokens, 4))
        grad_z, _ = fast_decode_backward(grad_out, z, crit)
        eps = 1e-6
        numeric = np.zeros_like(z)
        for cell in np.ndindex(z.shape):
            zp, zm = z.copy(), z.copy()
            zp[cell] += eps
            zm[cell] -= eps
            fp = np.sum(fast_decode(zp, crit) * grad_out)
            fm = np.sum(fast_decode(zm, crit) * grad_out)
            numeric[cell] = (fp - fm) / (2 * eps)
        np.testing.assert_allclose(grad_z, numeric, atol=1e-6)

    def test_decode_backward_wrt_gates(self):
        _, z, crit = random_case(t=8, e=3, m=4, k=2, seed=11)
        grad_out = np.random.default_rng(12).normal(size=(8, 4))
        _, grad_gates = fast_decode_backward(grad_out, z, crit)
        # d/dg of g * z[cell] . grad = z[cell] . grad at each slot.
        flat = z.reshape(-1, 4)
        for slot in range(2):
            for t in range(8):
                if not crit.valid[slot, t] or crit.gates[slot, t] == 0:
                    assert grad_gates[slot, t] == 0
                    continue
                cell = (crit.idxs[slot, t] * crit.capacity
                        + crit.locations[slot, t])
                expected = float(flat[cell] @ grad_out[t])
                assert grad_gates[slot, t] == pytest.approx(expected)

    def test_backward_shapes_validated(self):
        x, z, crit = random_case()
        with pytest.raises(ValueError):
            fast_encode_backward(z[:, :, :-1][:, :-1], crit)
        with pytest.raises(ValueError):
            fast_decode_backward(np.zeros((3, 3)), z, crit)


class TestShapeValidation:
    def test_encode_rejects_wrong_tokens(self):
        x, _, crit = random_case()
        with pytest.raises(ValueError):
            fast_encode(x[:-1], crit)

    def test_decode_rejects_wrong_dispatch(self):
        _, z, crit = random_case()
        with pytest.raises(ValueError):
            fast_decode(z[:-1], crit)
        with pytest.raises(ValueError):
            dense_decode(z[:, :-1], crit)


class TestZeroGateAndDropAgreement:
    """Dense/fast agreement on the awkward cases: a *valid* slot whose
    gate is exactly 0.0 (both paths must skip it) and tokens dropped at
    every slot (their decode row must be exactly zero), across dtypes.
    """

    @staticmethod
    def _crit_with_zero_gates_and_drops(seed, t, e, k, cap):
        rng = np.random.default_rng(seed)
        probs = softmax(rng.normal(size=(t, e)))
        crit = top_k_routing(probs, k, capacity=cap)
        # Zero the gate of one random *valid* slot per sampled token.
        valid_slots, valid_tokens = np.nonzero(crit.valid)
        if len(valid_tokens):
            pick = rng.integers(0, len(valid_tokens),
                                max(1, len(valid_tokens) // 4))
            crit.gates[valid_slots[pick], valid_tokens[pick]] = 0.0
        # Fully drop a random subset of tokens (all slots invalid).
        dropped = rng.random(t) < 0.25
        crit.locations[:, dropped] = crit.capacity
        crit.gates[:, dropped] = 0.0
        return rng, crit, dropped

    @given(seed=st.integers(0, 300), t=st.integers(1, 32),
           e=st.integers(2, 8), k=st.integers(1, 3),
           cap=st.integers(1, 8),
           dtype=st.sampled_from([np.float32, np.float64]))
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_agree(self, seed, t, e, k, cap, dtype):
        k = min(k, e)
        rng, crit, dropped = self._crit_with_zero_gates_and_drops(
            seed, t, e, k, cap)
        m = 5
        x = rng.normal(size=(t, m)).astype(dtype)
        z = rng.normal(size=(e, crit.capacity, m)).astype(dtype)
        tol = dict(rtol=1e-5, atol=1e-6) if dtype == np.float32 \
            else dict(rtol=1e-12, atol=1e-14)

        enc_fast = fast_encode(x, crit)
        enc_dense = dense_encode(x, crit)
        assert enc_fast.dtype == enc_dense.dtype == dtype
        np.testing.assert_allclose(enc_fast, enc_dense, **tol)

        dec_fast = fast_decode(z, crit)
        dec_dense = dense_decode(z, crit)
        assert dec_fast.dtype == dec_dense.dtype == dtype
        np.testing.assert_allclose(dec_fast, dec_dense, **tol)

        # Fully-dropped tokens contribute nothing and receive nothing.
        np.testing.assert_array_equal(dec_fast[dropped],
                                      np.zeros((dropped.sum(), m), dtype))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_combine_weights_follow_gate_dtype(self, dtype):
        # Regression (ISSUE 6): dense_combine_weights allocated an
        # untyped np.zeros, upcasting the whole dense reference path
        # to float64 whenever the gates were float32.
        _, _, crit = random_case()
        crit.gates = crit.gates.astype(dtype)
        assert dense_combine_weights(crit).dtype == dtype
        x = np.ones((crit.num_tokens, 3), dtype=dtype)
        assert dense_encode(x, crit).dtype == dtype

    def test_zero_gate_valid_slot_not_dispatched(self):
        # One token, one expert, gate exactly 0.0 on a valid slot: the
        # fast path must not scatter it (gates != 0 filter) and the
        # dense mask (combine > 0) must agree.
        crit = top_k_routing(np.array([[1.0]]), 1, capacity=1)
        crit.gates[0, 0] = 0.0
        x = np.ones((1, 3))
        np.testing.assert_array_equal(fast_encode(x, crit),
                                      np.zeros((1, 1, 3)))
        np.testing.assert_array_equal(dense_encode(x, crit),
                                      np.zeros((1, 1, 3)))


class TestDispatchBufferPool:
    """The fast kernels' zeroed-output reuse must never alias an array
    that an earlier autograd graph still holds."""

    def test_reuse_after_release(self):
        pool = DispatchBufferPool()
        a = pool.zeros((8, 4), np.float32)
        a[:] = 7.0
        first_id = id(a)
        del a
        b = pool.zeros((8, 4), np.float32)
        assert id(b) == first_id          # same buffer came back
        np.testing.assert_array_equal(b, np.zeros((8, 4), np.float32))
        assert pool.hits == 1

    def test_no_reuse_while_held(self):
        pool = DispatchBufferPool()
        a = pool.zeros((8, 4), np.float32)
        b = pool.zeros((8, 4), np.float32)  # `a` is still alive
        assert id(b) != id(a)
        assert pool.hits == 0 and pool.misses == 2

    def test_view_keeps_buffer_out_of_reuse(self):
        # An autograd graph typically holds a reshape view, not the
        # base array; the base's elevated refcount must still block
        # reuse.
        pool = DispatchBufferPool()
        a = pool.zeros((8, 4), np.float32)
        view = a.reshape(2, 4, 4)
        del a
        b = pool.zeros((8, 4), np.float32)
        assert b.base is not view and b is not view.base
        view[...] = 9.0
        np.testing.assert_array_equal(b, np.zeros((8, 4), np.float32))

    def test_dtype_and_shape_keyed_separately(self):
        pool = DispatchBufferPool()
        a32 = pool.zeros((4, 4), np.float32)
        del a32
        a64 = pool.zeros((4, 4), np.float64)
        assert a64.dtype == np.float64
        assert pool.hits == 0             # float32 slot not reused

    def test_capacity_bounded(self):
        pool = DispatchBufferPool(max_arrays_per_shape=2)
        live = [pool.zeros((4, 2), np.float32) for _ in range(5)]
        assert len(pool._free[((4, 2), "<f4")]) == 2
        del live
        pool.clear()
        assert pool.hits == pool.misses == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DispatchBufferPool(max_arrays_per_shape=0)

    def test_fast_encode_steps_reuse_buffers(self):
        # Two steps whose graphs are dropped in between: the second
        # step's scatter outputs should be pool hits, and the results
        # must be identical.
        from repro.moe.encode import dispatch_buffer_pool

        pool = dispatch_buffer_pool()
        x, _, crit = random_case()
        first = fast_encode(x, crit).copy()
        baseline = pool.hits
        out = fast_encode(x, crit)        # first buffer was released
        assert pool.hits > baseline
        np.testing.assert_array_equal(out, first)
