"""Tests for checkpoint/restore, the non-finite guard, and expert
degradation in the functional-substrate trainer."""

import numpy as np
import pytest

from repro.autograd.optim import Adam
from repro.nn.models import MoEClassifier
from repro.resilience.checkpoint import (
    capture_training_state,
    load_checkpoint,
    restore_training_state,
    save_checkpoint,
)
from repro.train.data import ClusteredTokenTask
from repro.train.trainer import train_model


@pytest.fixture(scope="module")
def splits():
    task = ClusteredTokenTask(num_clusters=8, input_dim=8, num_classes=4,
                              noise=0.4, seed=0)
    return task.sample(1024), task.sample(512)


def fresh_model(seed=0):
    return MoEClassifier(8, 16, 32, 4, num_blocks=2, num_experts=8,
                         rng=np.random.default_rng(seed), top_k=2)


class TestCheckpointRoundTrip:
    def test_save_load_identity(self, tmp_path):
        model = fresh_model()
        opt = Adam([p for p in model.parameters() if p.requires_grad])
        rng = np.random.default_rng(3)
        rng.integers(0, 100, 7)  # advance so the state is non-trivial
        ckpt = capture_training_state(model, opt, rng, step=5)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(ckpt, path)
        loaded = load_checkpoint(path)
        assert loaded.step == 5
        assert loaded.rng_state == ckpt.rng_state
        assert set(loaded.params) == set(ckpt.params)
        for name in ckpt.params:
            np.testing.assert_array_equal(loaded.params[name],
                                          ckpt.params[name])
        for a, b in zip(loaded.opt_m, ckpt.opt_m):
            np.testing.assert_array_equal(a, b)

    def test_restore_into_fresh_objects(self, tmp_path):
        model = fresh_model()
        opt = Adam([p for p in model.parameters() if p.requires_grad])
        rng = np.random.default_rng(3)
        ckpt = capture_training_state(model, opt, rng, step=0)

        other = fresh_model(seed=9)  # different init
        other_opt = Adam([p for p in other.parameters()
                          if p.requires_grad])
        other_rng = np.random.default_rng(99)
        restore_training_state(other, other_opt, other_rng, ckpt)
        for (n1, p1), (n2, p2) in zip(model.named_parameters(),
                                      other.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)
        assert other_rng.bit_generator.state == rng.bit_generator.state

    def test_restore_reapplies_failed_experts(self):
        model = fresh_model()
        model.fail_expert(0, 3)
        opt = Adam([p for p in model.parameters() if p.requires_grad])
        ckpt = capture_training_state(model, opt,
                                      np.random.default_rng(0), step=1)
        assert ckpt.failed_experts == {0: [3]}
        other = fresh_model()
        other_opt = Adam([p for p in other.parameters()
                          if p.requires_grad])
        restore_training_state(other, other_opt,
                               np.random.default_rng(0), ckpt)
        assert other.moe_layers()[0].failed_experts == {3}

    def test_shape_mismatch_rejected(self):
        model = fresh_model()
        opt = Adam([p for p in model.parameters() if p.requires_grad])
        ckpt = capture_training_state(model, opt,
                                      np.random.default_rng(0), step=0)
        name = next(iter(ckpt.params))
        ckpt.params[name] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            restore_training_state(model, opt,
                                   np.random.default_rng(0), ckpt)

    def test_name_mismatch_rejected(self):
        model = fresh_model()
        opt = Adam([p for p in model.parameters() if p.requires_grad])
        ckpt = capture_training_state(model, opt,
                                      np.random.default_rng(0), step=0)
        name = next(iter(ckpt.params))
        ckpt.params["bogus"] = ckpt.params.pop(name)
        with pytest.raises(ValueError, match="name mismatch"):
            restore_training_state(model, opt,
                                   np.random.default_rng(0), ckpt)


class TestResumeDeterminism:
    def test_resume_is_bit_identical(self, splits, tmp_path):
        """The acceptance contract: 40 straight steps == 20 steps ->
        checkpoint -> fresh process state -> restore -> 20 more,
        bit for bit (parameters and loss trace)."""
        train, test = splits
        kwargs = dict(steps=40, batch_size=64, seed=0)

        straight = train_model(fresh_model(), train, test, **kwargs)

        ckpt_dir = str(tmp_path / "ckpts")
        first = train_model(fresh_model(), train, test,
                            steps=20, batch_size=64, seed=0,
                            checkpoint_every=20, checkpoint_dir=ckpt_dir)
        assert len(first.checkpoint_paths) == 1

        resumed_model = fresh_model()  # same construction seed
        resumed = train_model(resumed_model, train, test, **kwargs,
                              resume_from=first.checkpoint_paths[0])

        assert resumed.losses == straight.losses
        assert resumed.train_accuracies == straight.train_accuracies
        assert resumed.capacity_traces == straight.capacity_traces
        assert resumed.eval_accuracy == straight.eval_accuracy

    def test_resumed_params_match_straight(self, splits, tmp_path):
        train, test = splits
        straight_model = fresh_model()
        train_model(straight_model, train, test, steps=30,
                    batch_size=64, seed=0)

        ckpt_dir = str(tmp_path / "ckpts")
        first = train_model(fresh_model(), train, test, steps=15,
                            batch_size=64, seed=0,
                            checkpoint_every=15, checkpoint_dir=ckpt_dir)
        resumed_model = fresh_model()
        train_model(resumed_model, train, test, steps=30,
                    batch_size=64, seed=0,
                    resume_from=first.checkpoint_paths[0])
        for (n1, p1), (n2, p2) in zip(
                straight_model.named_parameters(),
                resumed_model.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_resume_past_end_rejected(self, splits, tmp_path):
        train, test = splits
        ckpt_dir = str(tmp_path / "ckpts")
        result = train_model(fresh_model(), train, test, steps=10,
                             batch_size=32, seed=0,
                             checkpoint_every=10,
                             checkpoint_dir=ckpt_dir)
        with pytest.raises(ValueError, match="nothing left"):
            train_model(fresh_model(), train, test, steps=10,
                        batch_size=32, seed=0,
                        resume_from=result.checkpoint_paths[0])

    def test_checkpoint_every_validation(self, splits):
        train, test = splits
        with pytest.raises(ValueError, match="checkpoint_dir"):
            train_model(fresh_model(), train, test, steps=5,
                        checkpoint_every=2)
        with pytest.raises(ValueError, match="checkpoint_every"):
            train_model(fresh_model(), train, test, steps=5,
                        checkpoint_every=0, checkpoint_dir="/tmp/x")


class TestNonFiniteGuard:
    def test_poisoned_step_skipped_and_rolled_back(self, splits):
        train, test = splits
        model = fresh_model()
        poisoned_at = {}

        def hook(step, m):
            if step == 5:
                victim = next(p for p in m.parameters()
                              if p.requires_grad)
                poisoned_at["value"] = victim
                victim.data.flat[0] = np.nan

        result = train_model(model, train, test, steps=10,
                             batch_size=32, seed=0, step_hook=hook)
        assert result.skipped_steps == [5]
        assert len(result.losses) == 9
        assert np.isfinite(result.losses).all()
        # The rollback healed the poisoned weight.
        assert np.isfinite(poisoned_at["value"].data).all()

    def test_guard_disabled_lets_nan_through(self, splits):
        train, test = splits
        model = fresh_model()

        def hook(step, m):
            if step == 2:
                victim = next(p for p in m.parameters()
                              if p.requires_grad)
                victim.data.flat[0] = np.nan

        result = train_model(model, train, test, steps=5,
                             batch_size=32, seed=0, step_hook=hook,
                             nonfinite_guard=False)
        assert not np.isfinite(result.losses).all()


class TestExpertDegradation:
    def test_failed_expert_receives_no_tokens(self):
        from repro.autograd.tensor import Tensor
        from repro.nn.moe import MoE

        def run(fail):
            layer = MoE(8, 16, 4, np.random.default_rng(0), top_k=2)
            if fail:
                layer.fail_expert(2)
            x = Tensor(np.random.default_rng(1).normal(size=(64, 8)))
            out, aux = layer(x)
            (out.sum() + aux).backward()
            return layer, out

        healthy, _ = run(fail=False)
        # Control: expert 2 normally gets traffic, so gradients flow.
        assert np.abs(healthy.w1.grad[2]).sum() > 0

        failed, out = run(fail=True)
        # No tokens routed to the dead expert -> no gradient into it.
        assert np.abs(failed.w1.grad[2]).sum() == 0
        assert np.abs(failed.w2.grad[2]).sum() == 0
        # Survivors still train and the output stays finite.
        assert np.abs(failed.w1.grad[0]).sum() > 0
        assert np.isfinite(out.data).all()

    def test_training_continues_through_expert_failure(self, splits):
        train, test = splits
        model = fresh_model()

        def hook(step, m):
            if step == 4:
                m.fail_expert(0, 1)

        result = train_model(model, train, test, steps=12,
                             batch_size=32, seed=0, step_hook=hook)
        assert np.isfinite(result.losses).all()
        assert len(result.losses) == 12
        assert model.moe_layers()[0].failed_experts == {1}

    def test_accuracy_degrades_gracefully(self, splits):
        """Losing 2 of 8 experts mid-run must dent accuracy, not
        collapse it — survivors absorb the re-routed tokens."""
        train, test = splits
        kwargs = dict(steps=40, batch_size=64, seed=0)
        healthy = train_model(fresh_model(), train, test, **kwargs)

        def hook(step, m):
            if step == 10:
                m.fail_expert(0, 1)
                m.fail_expert(0, 2)

        degraded = train_model(fresh_model(), train, test, **kwargs,
                               step_hook=hook)
        assert degraded.skipped_steps == []
        assert degraded.eval_accuracy > 0.25   # above 4-class chance
        assert degraded.eval_accuracy >= healthy.eval_accuracy - 0.1

    def test_cannot_fail_all_experts(self):
        model = fresh_model()
        layer = model.moe_layers()[0]
        for e in range(layer.num_experts - 1):
            layer.fail_expert(e)
        with pytest.raises(ValueError, match="last surviving"):
            layer.fail_expert(layer.num_experts - 1)

    def test_fail_expert_validation(self):
        model = fresh_model()
        with pytest.raises(ValueError):
            model.fail_expert(5, 0)  # no such layer
        with pytest.raises(ValueError):
            model.fail_expert(0, 99)  # no such expert

    def test_restore_expert_readmits(self):
        model = fresh_model()
        layer = model.moe_layers()[0]
        layer.fail_expert(0)
        layer.restore_expert(0)
        assert layer.failed_experts == set()


class TestWindowedFinalMetrics:
    """Regression tests for the short-run window bug: final metrics
    must average over min(20, available) completed steps and stay
    finite even when steps were skipped."""

    def test_short_run_window_clamped(self, splits):
        train, test = splits
        result = train_model(fresh_model(), train, test, steps=7,
                             batch_size=32, seed=0)
        assert result.final_train_loss == pytest.approx(
            float(np.mean(result.losses)))
        assert result.final_train_accuracy == pytest.approx(
            float(np.mean(result.train_accuracies)))

    def test_long_run_window_is_last_20(self, splits):
        train, test = splits
        result = train_model(fresh_model(), train, test, steps=25,
                             batch_size=32, seed=0)
        assert result.final_train_loss == pytest.approx(
            float(np.mean(result.losses[-20:])))
        assert result.final_train_accuracy == pytest.approx(
            float(np.mean(result.train_accuracies[-20:])))

    def test_final_accuracy_in_range(self, splits):
        train, test = splits
        result = train_model(fresh_model(), train, test, steps=10,
                             batch_size=32, seed=0)
        assert 0.0 <= result.final_train_accuracy <= 1.0


class TestDtypeRoundTrip:
    """ISSUE 6: checkpoints are dtype-authoritative.  A float32 run's
    restore must stay bit-identical float32 (no silent casting through
    float64), and a checkpoint restores correctly into a model that was
    initialised under the other substrate dtype."""

    @staticmethod
    def _state(dtype):
        from repro.autograd.tensor import Tensor
        from repro.core.substrate import substrate_dtype

        with substrate_dtype(dtype):
            model = fresh_model()
            opt = Adam([p for p in model.parameters()
                        if p.requires_grad])
            # One real step so Adam moments are non-trivial.
            rng = np.random.default_rng(5)
            x = rng.normal(size=(16, 8))
            logits, l_aux = model(Tensor(x))
            (logits.sum() + l_aux).backward()
            opt.step()
            opt.zero_grad()
        return model, opt

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_save_load_preserves_dtype_bitwise(self, dtype, tmp_path):
        model, opt = self._state(dtype)
        rng = np.random.default_rng(3)
        ckpt = capture_training_state(model, opt, rng, step=1)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(ckpt, path)
        loaded = load_checkpoint(path)
        for name, arr in ckpt.params.items():
            assert arr.dtype == dtype
            got = loaded.params[name]
            assert got.dtype == dtype
            assert got.tobytes() == arr.tobytes()  # bit identical
        for a, b in zip(loaded.opt_m, ckpt.opt_m):
            assert a.dtype == dtype
            assert a.tobytes() == b.tobytes()

    @pytest.mark.parametrize("save_dtype,init_dtype",
                             [(np.float32, np.float64),
                              (np.float64, np.float32)])
    def test_restore_is_dtype_authoritative(self, save_dtype,
                                            init_dtype, tmp_path):
        from repro.core.substrate import substrate_dtype

        model, opt = self._state(save_dtype)
        rng = np.random.default_rng(3)
        ckpt = capture_training_state(model, opt, rng, step=1)

        with substrate_dtype(init_dtype):
            other = fresh_model(seed=9)
            other_opt = Adam([p for p in other.parameters()
                              if p.requires_grad])
        restore_training_state(other, other_opt,
                               np.random.default_rng(0), ckpt)
        for (name, p), (_, src) in zip(other.named_parameters(),
                                       model.named_parameters()):
            assert p.data.dtype == save_dtype, name
            assert p.data.tobytes() == src.data.tobytes()
        for slot, saved in zip(other_opt._m, ckpt.opt_m):
            assert slot.dtype == save_dtype
            assert slot.tobytes() == saved.tobytes()
        for slot, saved in zip(other_opt._v, ckpt.opt_v):
            assert slot.dtype == save_dtype

    def test_meta_records_substrate_dtype(self, tmp_path):
        import json as _json

        from repro.core.substrate import substrate_dtype

        model, opt = self._state(np.float32)
        path = str(tmp_path / "ck.npz")
        # Meta records whatever dtype is active *at save time*.
        with substrate_dtype(np.float32):
            ckpt = capture_training_state(model, opt,
                                          np.random.default_rng(0),
                                          step=0)
            save_checkpoint(ckpt, path)
        with np.load(path, allow_pickle=False) as data:
            meta = _json.loads(bytes(data["meta"]).decode("utf-8"))
        assert meta["substrate_dtype"] == "float32"


class TestResumeAcrossSubstrateConfig:
    """ISSUE 7 satellite: a checkpoint is portable across substrate
    *configuration* changes — the restored process may run with a
    different expert-worker count or a different ambient dtype, and
    the saved state stays authoritative."""

    def test_resume_under_expert_workers_is_bit_identical(
            self, splits, tmp_path):
        """Serial save -> multicore resume must replay the exact same
        trajectory (the executor is bitwise-equal to serial, so the
        worker count is not part of the checkpoint contract)."""
        from repro.runtime.executor import shutdown_executor

        train, test = splits
        straight = train_model(fresh_model(), train, test, steps=16,
                               batch_size=64, seed=0)
        ckpt_dir = str(tmp_path / "ckpts")
        first = train_model(fresh_model(), train, test, steps=8,
                            batch_size=64, seed=0,
                            checkpoint_every=8,
                            checkpoint_dir=ckpt_dir)
        try:
            resumed = train_model(
                fresh_model(), train, test, steps=16, batch_size=64,
                seed=0, resume_from=first.checkpoint_paths[0],
                expert_workers=2)
        finally:
            shutdown_executor()
        assert resumed.losses == straight.losses
        assert resumed.eval_accuracy == straight.eval_accuracy

    def test_float32_ckpt_resumed_under_float64_process(
            self, splits, tmp_path):
        """A float32 checkpoint restored in a float64-ambient process
        keeps its saved dtype end to end: the resumed run trains on
        float32 parameters and never silently widens them."""
        from repro.core.substrate import substrate_dtype

        train, test = splits
        ckpt_dir = str(tmp_path / "ckpts")
        with substrate_dtype(np.float32):
            first = train_model(fresh_model(), train, test, steps=8,
                                batch_size=64, seed=0,
                                checkpoint_every=8,
                                checkpoint_dir=ckpt_dir)
        ckpt = load_checkpoint(first.checkpoint_paths[0])
        assert all(a.dtype == np.float32
                   for a in ckpt.params.values())

        with substrate_dtype(np.float64):
            model = fresh_model()
            resumed = train_model(
                model, train, test, steps=16, batch_size=64, seed=0,
                resume_from=first.checkpoint_paths[0])
        # The restore overwrote the float64 init with the saved
        # float32 state, and training kept it there.
        assert all(p.data.dtype == np.float32
                   for _, p in model.named_parameters())
        assert np.isfinite(resumed.losses).all()
        assert len(resumed.losses) == 16

    def test_resumed_state_matches_ckpt_bitwise_after_zero_steps(
            self, splits, tmp_path):
        """Restore-then-first-step determinism: the restored params of
        a cross-dtype-process resume are byte-equal to the file."""
        from repro.core.substrate import substrate_dtype

        train, test = splits
        ckpt_dir = str(tmp_path / "ckpts")
        with substrate_dtype(np.float32):
            first = train_model(fresh_model(), train, test, steps=8,
                                batch_size=64, seed=0,
                                checkpoint_every=8,
                                checkpoint_dir=ckpt_dir)
        ckpt = load_checkpoint(first.checkpoint_paths[0])
        with substrate_dtype(np.float64):
            model = fresh_model(seed=9)
            opt = Adam([p for p in model.parameters()
                        if p.requires_grad])
        restore_training_state(model, opt, np.random.default_rng(0),
                               ckpt)
        for name, p in model.named_parameters():
            assert p.data.tobytes() == ckpt.params[name].tobytes()
