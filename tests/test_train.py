"""Tests for the synthetic tasks and training loops."""

import numpy as np
import pytest

from repro.nn.models import DenseClassifier, MoEClassifier
from repro.train.data import ClusteredTokenTask, TokenBatch, few_shot_split
from repro.train.trainer import (
    evaluate,
    linear_probe_accuracy,
    train_model,
)


@pytest.fixture(scope="module")
def task():
    return ClusteredTokenTask(num_clusters=8, input_dim=8, num_classes=4,
                              noise=0.4, seed=0)


class TestTask:
    def test_sample_shapes(self, task):
        batch = task.sample(100)
        assert batch.x.shape == (100, 8)
        assert batch.y.shape == (100,)
        assert set(np.unique(batch.cluster)) <= set(range(8))

    def test_labels_in_range(self, task):
        batch = task.sample(500)
        assert batch.y.min() >= 0
        assert batch.y.max() < 4

    def test_labels_cluster_conditional(self, task):
        # The same offset yields different labels in different clusters
        # for at least some cluster pairs — the expert-specialization
        # mechanism.
        rng = np.random.default_rng(1)
        offsets = rng.normal(0.0, task.noise, (200, task.input_dim))
        labels = {}
        for c in range(3):
            clusters = np.full(200, c)
            labels[c] = task._label(offsets, clusters, task.label_maps,
                                    task.label_bias)
        assert (labels[0] != labels[1]).mean() > 0.3

    def test_downstream_same_clusters_new_labels(self, task):
        down = task.downstream(seed=1)
        np.testing.assert_array_equal(down.centers, task.centers)
        assert not np.allclose(down.label_maps, task.label_maps)

    def test_rejects_bad_sample(self, task):
        with pytest.raises(ValueError):
            task.sample(0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            ClusteredTokenTask(num_clusters=0)
        with pytest.raises(ValueError):
            ClusteredTokenTask(num_classes=1)


class TestFewShotSplit:
    def test_shots_per_class(self, task):
        batch = task.sample(2000)
        train, test = few_shot_split(batch, shots=5, seed=0)
        for cls in np.unique(batch.y):
            assert (train.y == cls).sum() == 5
        assert len(train) + len(test) == len(batch)

    def test_rejects_insufficient_samples(self, task):
        batch = task.sample(6)
        with pytest.raises(ValueError):
            few_shot_split(batch, shots=5)

    def test_rejects_bad_shots(self, task):
        with pytest.raises(ValueError):
            few_shot_split(task.sample(100), shots=0)


class TestTokenBatch:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            TokenBatch(np.zeros((3, 2)), np.zeros(2), np.zeros(3))

    def test_subset(self, task):
        batch = task.sample(50)
        sub = batch.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.x, batch.x[[0, 2, 4]])


class TestTraining:
    @pytest.fixture(scope="class")
    def splits(self):
        task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                  num_classes=4, noise=0.4, seed=0)
        return task.sample(2048), task.sample(1024)

    def test_loss_decreases(self, splits):
        train, test = splits
        model = DenseClassifier(8, 16, 32, 4, num_blocks=2,
                                rng=np.random.default_rng(0))
        result = train_model(model, train, test, steps=80, seed=0)
        assert np.mean(result.losses[-10:]) < np.mean(result.losses[:10])

    def test_beats_chance(self, splits):
        train, test = splits
        model = DenseClassifier(8, 16, 32, 4, num_blocks=2,
                                rng=np.random.default_rng(0))
        result = train_model(model, train, test, steps=150, seed=0)
        assert result.eval_accuracy > 0.35  # chance = 0.25

    def test_moe_records_capacity_traces(self, splits):
        train, test = splits
        model = MoEClassifier(8, 16, 32, 4, num_blocks=2, num_experts=8,
                              rng=np.random.default_rng(0), top_k=1)
        result = train_model(model, train, test, steps=30, seed=0)
        assert len(result.capacity_traces[0]) == 30
        assert all(f >= 1.0 for f in result.capacity_traces[0])

    def test_frozen_moe_params_untouched(self, splits):
        train, test = splits
        model = MoEClassifier(8, 16, 32, 4, num_blocks=2, num_experts=8,
                              rng=np.random.default_rng(0), top_k=1)
        model.freeze_moe()
        before = model.moe_layers()[0].w1.data.copy()
        train_model(model, train, test, steps=20, seed=0)
        np.testing.assert_array_equal(model.moe_layers()[0].w1.data,
                                      before)

    def test_rejects_all_frozen(self, splits):
        train, test = splits
        model = DenseClassifier(8, 16, 32, 4, num_blocks=1,
                                rng=np.random.default_rng(0))
        for p in model.parameters():
            p.requires_grad = False
        with pytest.raises(ValueError):
            train_model(model, train, test, steps=5)

    def test_rejects_zero_steps(self, splits):
        train, test = splits
        model = DenseClassifier(8, 16, 32, 4, num_blocks=1,
                                rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            train_model(model, train, test, steps=0)

    def test_step_walls_recorded(self, splits):
        """Every step executed by this call gets a wall-clock entry
        (the scenario engine's step-time-ratio SLO reads these)."""
        train, test = splits
        model = MoEClassifier(8, 16, 32, 4, num_blocks=2,
                              num_experts=8,
                              rng=np.random.default_rng(0), top_k=2)
        result = train_model(model, train, test, steps=6, seed=0)
        assert sorted(result.step_walls) == list(range(6))
        assert all(w >= 0 for w in result.step_walls.values())

    def test_evaluate_range(self, splits):
        train, test = splits
        model = DenseClassifier(8, 16, 32, 4, num_blocks=1,
                                rng=np.random.default_rng(0))
        acc = evaluate(model, test)
        assert 0.0 <= acc <= 1.0

    def test_linear_probe(self, splits):
        train, test = splits
        model = DenseClassifier(8, 16, 32, 4, num_blocks=2,
                                rng=np.random.default_rng(0))
        train_model(model, train, test, steps=120, seed=0)
        probe_train, probe_test = few_shot_split(test, shots=5, seed=0)
        acc = linear_probe_accuracy(model, probe_train, probe_test)
        assert acc > 0.25  # better than chance on 4 classes


class TestDtypeParity:
    """ISSUE 6: float32 (the default substrate) must train the same
    model to the same losses as float64.  The committed tolerance band
    is 1e-4 relative per step — observed divergence over 40 steps is
    ~1.5e-7 (float32 roundoff), so a breach means a genuine numeric
    bug, not accumulation noise."""

    REL_BAND = 1e-4

    @staticmethod
    def _losses(dtype, steps=30):
        from repro.core.substrate import substrate_dtype

        with substrate_dtype(dtype):
            task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                                      num_classes=4, noise=0.4, seed=0)
            model = MoEClassifier(8, 16, 32, 4, num_blocks=2,
                                  num_experts=8,
                                  rng=np.random.default_rng(0), top_k=2)
            result = train_model(model, task.sample(1024),
                                 task.sample(512), steps=steps,
                                 batch_size=128, seed=0)
        params = {n: p.data.dtype for n, p in model.named_parameters()}
        return np.asarray(result.losses), result.eval_accuracy, params

    def test_float32_tracks_float64_losses(self):
        l32, acc32, dtypes32 = self._losses(np.float32)
        l64, acc64, dtypes64 = self._losses(np.float64)
        assert all(dt == np.float32 for dt in dtypes32.values())
        assert all(dt == np.float64 for dt in dtypes64.values())
        rel = np.abs(l32 - l64) / np.abs(l64)
        assert rel.max() <= self.REL_BAND, \
            f"max per-step rel loss deviation {rel.max():.2e} " \
            f"exceeds the committed {self.REL_BAND:.0e} band"
        assert acc32 == pytest.approx(acc64, abs=0.02)
