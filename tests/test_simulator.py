"""Tests for the discrete-event multi-stream GPU simulator."""

import pytest

from repro.cluster.simulator import (
    InterferenceModel,
    Op,
    Schedule,
    simulate,
)


def make_chain(*works, stream_cycle=("comm", "compute", "comm")):
    s = Schedule()
    prev = None
    for i, w in enumerate(works):
        op = s.new_op(work=w, stream=stream_cycle[i % len(stream_cycle)],
                      kind="comm" if i % 2 == 0 else "compute",
                      deps=(prev,) if prev else (), label=f"op{i}")
        prev = op
    return s


class TestBasics:
    def test_single_op(self):
        s = Schedule()
        s.new_op(work=2.5, label="only")
        assert simulate(s).makespan == pytest.approx(2.5)

    def test_serial_chain_sums(self):
        s = make_chain(1.0, 2.0, 3.0)
        assert simulate(s).makespan == pytest.approx(6.0)

    def test_zero_work_barrier(self):
        s = Schedule()
        a = s.new_op(work=1.0, stream="comm", label="a")
        s.new_op(work=0.0, stream="compute", kind="host", deps=(a,),
                 label="barrier")
        assert simulate(s).makespan == pytest.approx(1.0)

    def test_all_zero_work(self):
        s = Schedule()
        a = s.new_op(work=0.0, kind="host", label="a")
        s.new_op(work=0.0, kind="host", deps=(a,), label="b")
        assert simulate(s).makespan == 0.0

    def test_spans_recorded(self):
        s = make_chain(1.0, 2.0)
        result = simulate(s)
        (a, b) = s.ops
        assert result.span(a) == (pytest.approx(0.0), pytest.approx(1.0))
        assert result.span(b)[0] == pytest.approx(1.0)

    def test_rejects_foreign_dependency(self):
        s = Schedule()
        ghost = Op(work=1.0, label="ghost")
        s.new_op(work=1.0, deps=(ghost,), label="x")
        with pytest.raises(ValueError):
            simulate(s)

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            Op(work=-1.0)

    def test_circular_deadlock_detected(self):
        s = Schedule()
        a = Op(work=1.0, label="a")
        b = Op(work=1.0, stream="other", deps=(a,), label="b")
        a.deps = (b,)
        s.add(a)
        s.add(b)
        with pytest.raises(RuntimeError, match="deadlock"):
            simulate(s)


class TestStreams:
    def test_same_stream_serializes(self):
        s = Schedule()
        s.new_op(work=1.0, stream="comm", kind="comm", label="a")
        s.new_op(work=1.0, stream="comm", kind="comm", label="b")
        assert simulate(s).makespan == pytest.approx(2.0)

    def test_different_streams_no_interference(self):
        s = Schedule()
        s.new_op(work=1.0, stream="s1", kind="host", label="a")
        s.new_op(work=1.0, stream="s2", kind="host", label="b")
        assert simulate(s).makespan == pytest.approx(1.0)

    def test_different_gpus_fully_parallel(self):
        s = Schedule()
        s.new_op(work=1.0, gpu=0, kind="compute", label="a")
        s.new_op(work=1.0, gpu=1, kind="comm", stream="comm", label="b")
        assert simulate(s).makespan == pytest.approx(1.0)

    def test_fifo_order_respected(self):
        s = Schedule()
        s.new_op(work=1.0, stream="comm", kind="comm", label="a")
        blocker = s.new_op(work=5.0, gpu=1, kind="compute", label="blk")
        # b is queued first on comm but depends on the slow blocker;
        # c is behind b in FIFO and must wait even though it is ready.
        b = s.new_op(work=1.0, stream="comm", kind="comm",
                     deps=(blocker,), label="b")
        c = s.new_op(work=1.0, stream="comm", kind="comm", label="c")
        result = simulate(s)
        assert result.span(c)[0] >= result.span(b)[0]


class TestInterference:
    def test_overlap_slows_both(self):
        model = InterferenceModel()
        s = Schedule()
        s.new_op(work=1.0, stream="compute", kind="compute", label="comp")
        s.new_op(work=1.0, stream="comm", kind="comm", label="comm")
        makespan = simulate(s, model).makespan
        # Full overlap: both slowed, so longer than 1.0 but far less
        # than serial 2.0.
        assert 1.0 < makespan < 1.5

    def test_memcpy_comm_interferes_more(self):
        def run(kind):
            s = Schedule()
            s.new_op(work=1.0, stream="compute", kind="compute", label="c")
            s.new_op(work=1.0, stream="comm", kind=kind, label="x")
            return simulate(s).makespan
        assert run("comm_memcpy") > run("comm")

    def test_host_ops_do_not_interfere(self):
        s = Schedule()
        s.new_op(work=1.0, stream="compute", kind="compute", label="c")
        s.new_op(work=1.0, stream="host", kind="host", label="h")
        assert simulate(s).makespan == pytest.approx(1.0)

    def test_custom_interference_rate(self):
        model = InterferenceModel(slowdown={"compute": {"comm": 2.0}})
        s = Schedule()
        s.new_op(work=1.0, stream="compute", kind="compute", label="c")
        s.new_op(work=10.0, stream="comm", kind="comm", label="x")
        result = simulate(s, model)
        comp = next(op for op in s.ops if op.label == "c")
        start, end = result.span(comp)
        assert end - start == pytest.approx(2.0)

    def test_rate_counts_each_kind_once(self):
        model = InterferenceModel(slowdown={"compute": {"comm": 1.5}})
        assert model.rate("compute", ["comm", "comm", "comm"]) == \
            pytest.approx(1 / 1.5)


class TestBusyTime:
    def test_stream_busy_time_merges_intervals(self):
        s = Schedule()
        a = s.new_op(work=1.0, stream="comm", kind="comm", label="a")
        gap = s.new_op(work=1.0, stream="compute", kind="compute",
                       deps=(a,), label="gap")
        s.new_op(work=1.0, stream="comm", kind="comm", deps=(gap,),
                 label="b")
        result = simulate(s)
        busy = result.stream_busy_time(0, "comm")
        assert busy == pytest.approx(2.0, rel=0.2)
        assert busy < result.makespan
