"""Tests for the discrete-event multi-stream GPU simulator."""

import numpy as np
import pytest

from repro.cluster.simulator import (
    InterferenceModel,
    Op,
    Schedule,
    simulate,
)


def make_chain(*works, stream_cycle=("comm", "compute", "comm")):
    s = Schedule()
    prev = None
    for i, w in enumerate(works):
        op = s.new_op(work=w, stream=stream_cycle[i % len(stream_cycle)],
                      kind="comm" if i % 2 == 0 else "compute",
                      deps=(prev,) if prev else (), label=f"op{i}")
        prev = op
    return s


class TestBasics:
    def test_single_op(self):
        s = Schedule()
        s.new_op(work=2.5, label="only")
        assert simulate(s).makespan == pytest.approx(2.5)

    def test_serial_chain_sums(self):
        s = make_chain(1.0, 2.0, 3.0)
        assert simulate(s).makespan == pytest.approx(6.0)

    def test_zero_work_barrier(self):
        s = Schedule()
        a = s.new_op(work=1.0, stream="comm", label="a")
        s.new_op(work=0.0, stream="compute", kind="host", deps=(a,),
                 label="barrier")
        assert simulate(s).makespan == pytest.approx(1.0)

    def test_all_zero_work(self):
        s = Schedule()
        a = s.new_op(work=0.0, kind="host", label="a")
        s.new_op(work=0.0, kind="host", deps=(a,), label="b")
        assert simulate(s).makespan == 0.0

    def test_spans_recorded(self):
        s = make_chain(1.0, 2.0)
        result = simulate(s)
        (a, b) = s.ops
        assert result.span(a) == (pytest.approx(0.0), pytest.approx(1.0))
        assert result.span(b)[0] == pytest.approx(1.0)

    def test_rejects_foreign_dependency(self):
        s = Schedule()
        ghost = Op(work=1.0, label="ghost")
        s.new_op(work=1.0, deps=(ghost,), label="x")
        with pytest.raises(ValueError):
            simulate(s)

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            Op(work=-1.0)

    def test_circular_deadlock_detected(self):
        s = Schedule()
        a = Op(work=1.0, label="a")
        b = Op(work=1.0, stream="other", deps=(a,), label="b")
        a.deps = (b,)
        s.add(a)
        s.add(b)
        with pytest.raises(RuntimeError, match="deadlock"):
            simulate(s)

    def test_deadlock_diagnostic_names_blocked_ops(self):
        """The error must list exactly the blocked ops with their
        unmet dependencies, so a cycle is readable from the message."""
        s = Schedule()
        a = Op(work=1.0, label="ping")
        b = Op(work=1.0, stream="other", deps=(a,), label="pong")
        a.deps = (b,)
        s.add(a)
        s.add(b)
        # A completed-before-deadlock op must NOT appear as blocked.
        s.new_op(work=0.5, gpu=1, label="innocent")
        with pytest.raises(RuntimeError) as exc:
            simulate(s)
        message = str(exc.value)
        assert "ping <- unmet [pong]" in message
        assert "pong <- unmet [ping]" in message
        assert "innocent" not in message


class TestStreams:
    def test_same_stream_serializes(self):
        s = Schedule()
        s.new_op(work=1.0, stream="comm", kind="comm", label="a")
        s.new_op(work=1.0, stream="comm", kind="comm", label="b")
        assert simulate(s).makespan == pytest.approx(2.0)

    def test_different_streams_no_interference(self):
        s = Schedule()
        s.new_op(work=1.0, stream="s1", kind="host", label="a")
        s.new_op(work=1.0, stream="s2", kind="host", label="b")
        assert simulate(s).makespan == pytest.approx(1.0)

    def test_different_gpus_fully_parallel(self):
        s = Schedule()
        s.new_op(work=1.0, gpu=0, kind="compute", label="a")
        s.new_op(work=1.0, gpu=1, kind="comm", stream="comm", label="b")
        assert simulate(s).makespan == pytest.approx(1.0)

    def test_fifo_order_respected(self):
        s = Schedule()
        s.new_op(work=1.0, stream="comm", kind="comm", label="a")
        blocker = s.new_op(work=5.0, gpu=1, kind="compute", label="blk")
        # b is queued first on comm but depends on the slow blocker;
        # c is behind b in FIFO and must wait even though it is ready.
        b = s.new_op(work=1.0, stream="comm", kind="comm",
                     deps=(blocker,), label="b")
        c = s.new_op(work=1.0, stream="comm", kind="comm", label="c")
        result = simulate(s)
        assert result.span(c)[0] >= result.span(b)[0]


class TestInterference:
    def test_overlap_slows_both(self):
        model = InterferenceModel()
        s = Schedule()
        s.new_op(work=1.0, stream="compute", kind="compute", label="comp")
        s.new_op(work=1.0, stream="comm", kind="comm", label="comm")
        makespan = simulate(s, model).makespan
        # Full overlap: both slowed, so longer than 1.0 but far less
        # than serial 2.0.
        assert 1.0 < makespan < 1.5

    def test_memcpy_comm_interferes_more(self):
        def run(kind):
            s = Schedule()
            s.new_op(work=1.0, stream="compute", kind="compute", label="c")
            s.new_op(work=1.0, stream="comm", kind=kind, label="x")
            return simulate(s).makespan
        assert run("comm_memcpy") > run("comm")

    def test_host_ops_do_not_interfere(self):
        s = Schedule()
        s.new_op(work=1.0, stream="compute", kind="compute", label="c")
        s.new_op(work=1.0, stream="host", kind="host", label="h")
        assert simulate(s).makespan == pytest.approx(1.0)

    def test_custom_interference_rate(self):
        model = InterferenceModel(slowdown={"compute": {"comm": 2.0}})
        s = Schedule()
        s.new_op(work=1.0, stream="compute", kind="compute", label="c")
        s.new_op(work=10.0, stream="comm", kind="comm", label="x")
        result = simulate(s, model)
        comp = next(op for op in s.ops if op.label == "c")
        start, end = result.span(comp)
        assert end - start == pytest.approx(2.0)

    def test_rate_counts_each_kind_once(self):
        model = InterferenceModel(slowdown={"compute": {"comm": 1.5}})
        assert model.rate("compute", ["comm", "comm", "comm"]) == \
            pytest.approx(1 / 1.5)


def reference_host_schedule(ops):
    """Independent list scheduler for interference-free (host) DAGs.

    Fixed-point iteration over per-(gpu, stream) FIFO queues: a queue
    head whose dependencies have finished starts at
    ``max(stream available, dep end times)``.  For ``kind="host"`` ops
    the event-driven simulator must agree exactly — rates are always
    1.0, so spans are pure queueing arithmetic.
    """
    queues = {}
    for op in ops:
        queues.setdefault((op.gpu, op.stream), []).append(op)
    avail = {key: 0.0 for key in queues}
    spans = {}
    while len(spans) < len(ops):
        progressed = False
        for key, queue in queues.items():
            while queue:
                op = queue[0]
                if any(d not in spans for d in op.deps):
                    break
                start = max([avail[key]]
                            + [spans[d][1] for d in op.deps])
                spans[op] = (start, start + op.work)
                avail[key] = start + op.work
                queue.pop(0)
                progressed = True
        if not progressed:
            raise RuntimeError("reference scheduler deadlocked")
    makespan = max(end for _, end in spans.values()) if spans else 0.0
    return makespan, spans


class TestReferenceAgreement:
    """The event-driven engine against an independent reference
    implementation on large random DAGs (regression guard for the
    reverse-dependents-index rewrite of the completion path)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_dag_agreement(self, seed):
        rng = np.random.default_rng(seed)
        s = Schedule()
        ops = []
        for i in range(300):
            num_deps = int(rng.integers(0, 4)) if ops else 0
            deps = tuple(ops[int(j)] for j in set(
                rng.integers(0, len(ops), num_deps).tolist())) \
                if num_deps else ()
            work = float(rng.uniform(0.0, 0.05))
            if rng.uniform() < 0.1:
                work = 0.0  # exercise the instant-completion path
            ops.append(s.new_op(
                work=work, gpu=int(rng.integers(0, 4)),
                stream=str(rng.choice(["s0", "s1"])),
                kind="host", deps=deps, label=f"op{i}"))
        ref_makespan, ref_spans = reference_host_schedule(s.ops)
        result = simulate(s)
        assert result.makespan == pytest.approx(ref_makespan)
        for op in s.ops:
            got, want = result.span(op), ref_spans[op]
            assert got[0] == pytest.approx(want[0]), op.label
            assert got[1] == pytest.approx(want[1]), op.label

    def test_wide_fanout_agreement(self):
        # One root feeding 200 dependents across GPUs: the shape the
        # old O(N^2) dependency clearing was slowest on.
        rng = np.random.default_rng(7)
        s = Schedule()
        root = s.new_op(work=0.01, kind="host", label="root")
        leaves = [s.new_op(work=float(rng.uniform(0.001, 0.01)),
                           gpu=g % 8, stream=f"s{g % 2}", kind="host",
                           deps=(root,), label=f"leaf{g}")
                  for g in range(200)]
        s.new_op(work=0.0, kind="host", deps=tuple(leaves),
                 label="join")
        ref_makespan, _ = reference_host_schedule(s.ops)
        assert simulate(s).makespan == pytest.approx(ref_makespan)


class TestBusyTime:
    def test_stream_busy_time_merges_intervals(self):
        s = Schedule()
        a = s.new_op(work=1.0, stream="comm", kind="comm", label="a")
        gap = s.new_op(work=1.0, stream="compute", kind="compute",
                       deps=(a,), label="gap")
        s.new_op(work=1.0, stream="comm", kind="comm", deps=(gap,),
                 label="b")
        result = simulate(s)
        busy = result.stream_busy_time(0, "comm")
        assert busy == pytest.approx(2.0, rel=0.2)
        assert busy < result.makespan
