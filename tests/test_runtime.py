"""Tests for the runtime planner (Figure 23 feature ladder)."""

import pytest

from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.parallel.strategy import Parallelism
from repro.runtime.kernels import (
    dense_decode_time,
    dense_encode_time,
    gating_time,
    sparse_decode_time,
    sparse_encode_time,
)
from repro.runtime.plan import (
    FAIRSEQ_FEATURES,
    TUTEL_FEATURES,
    ExecutionFeatures,
    build_segment_spec,
    choose_parallelism,
    moe_step_time,
)


def fig23_cfg(world):
    """The Figure 23 single-layer setting."""
    return MoEConfig(world_size=world, experts_per_gpu=2,
                     model_dim=2048, hidden_dim=2048,
                     tokens_per_gpu=16384, top_k=2, capacity_factor=1.0)


class TestKernelTimes:
    def test_sparse_much_faster_than_dense(self):
        cfg = fig23_cfg(16)
        gpu = ndv4_topology(16).gpu
        assert dense_encode_time(cfg, gpu) > 10 * sparse_encode_time(cfg,
                                                                     gpu)
        assert dense_decode_time(cfg, gpu) > 10 * sparse_decode_time(cfg,
                                                                     gpu)

    def test_dense_cost_grows_quadratically_with_tokens(self):
        gpu = ndv4_topology(1).gpu
        small = dense_encode_time(fig23_cfg(1).with_(tokens_per_gpu=4096),
                                  gpu)
        large = dense_encode_time(fig23_cfg(1).with_(tokens_per_gpu=16384),
                                  gpu)
        assert large > 8 * small

    def test_sparse_cost_linear_in_tokens(self):
        gpu = ndv4_topology(1).gpu
        small = sparse_encode_time(fig23_cfg(1).with_(tokens_per_gpu=4096),
                                   gpu)
        large = sparse_encode_time(
            fig23_cfg(1).with_(tokens_per_gpu=16384), gpu)
        assert large < 6 * small

    def test_gating_grows_with_expert_count(self):
        gpu = ndv4_topology(2048).gpu
        small = gating_time(fig23_cfg(16), gpu)
        large = gating_time(fig23_cfg(2048), gpu)
        assert large > 2 * small


class TestChooseParallelism:
    def test_ep_when_enough_experts(self):
        cfg = fig23_cfg(16)  # dE = 2 -> r = 1
        topo = ndv4_topology(16)
        assert choose_parallelism(cfg, topo, TUTEL_FEATURES) is \
            Parallelism.EP

    def test_static_override(self):
        cfg = MoEConfig(world_size=8, experts_per_gpu=0.25,
                        model_dim=1024, hidden_dim=4096,
                        tokens_per_gpu=1024, top_k=1)
        topo = ndv4_topology(8)
        static = FAIRSEQ_FEATURES.with_(
            parallelism=Parallelism.P2_EP_MP)
        assert choose_parallelism(cfg, topo, static) is \
            Parallelism.P2_EP_MP

    def test_adaptive_picks_something(self):
        cfg = MoEConfig(world_size=8, experts_per_gpu=0.25,
                        model_dim=1024, hidden_dim=4096,
                        tokens_per_gpu=1024, top_k=1)
        topo = ndv4_topology(8)
        chosen = choose_parallelism(cfg, topo, TUTEL_FEATURES)
        assert chosen in (Parallelism.P1_EP_DP, Parallelism.P2_EP_MP)


class TestSegmentSpecs:
    def test_raw_layout_shrinks_rows(self):
        cfg = fig23_cfg(256)
        topo = ndv4_topology(256)
        raw = build_segment_spec(cfg, topo, Parallelism.EP,
                                 flexible_a2a=False)
        flex = build_segment_spec(cfg, topo, Parallelism.EP,
                                  flexible_a2a=True)
        assert raw.expert_rows == cfg.capacity_per_gpu
        assert flex.expert_rows == cfg.global_capacity
        assert raw.expert_batch == 256 * 2
        assert flex.expert_batch == 2

    def test_p2_multiplies_bytes_and_shards_hidden(self):
        cfg = MoEConfig(world_size=8, experts_per_gpu=0.25,
                        model_dim=1024, hidden_dim=4096,
                        tokens_per_gpu=1024, top_k=1)
        topo = ndv4_topology(8)
        spec = build_segment_spec(cfg, topo, Parallelism.P2_EP_MP,
                                  flexible_a2a=True)
        assert spec.a2a_bytes == 4 * cfg.dispatch_bytes_per_gpu
        assert spec.hidden_dim == 1024


class TestFeatureLadder:
    """Adding each Tutel feature must never slow the layer down, and
    the full stack must land in the paper's speedup band."""

    @pytest.fixture(params=[16, 256, 2048])
    def world(self, request):
        return request.param

    def ladder(self, world):
        base = FAIRSEQ_FEATURES
        return [
            base,
            base.with_(name="+kernels", fast_kernels=True),
            base.with_(name="+pipelining", fast_kernels=True,
                       adaptive_pipelining=True),
            base.with_(name="+flex", fast_kernels=True,
                       adaptive_pipelining=True, flexible_a2a=True),
            TUTEL_FEATURES,
        ]

    def test_monotone_improvement(self, world):
        cfg = fig23_cfg(world)
        topo = ndv4_topology(world)
        totals = [moe_step_time(cfg, topo, f).total
                  for f in self.ladder(world)]
        for before, after in zip(totals, totals[1:]):
            assert after <= before * 1.001

    def test_paper_speedup_band(self, world):
        # Paper: 4.96x at 16 GPUs, 5.75x at 2,048 GPUs.
        cfg = fig23_cfg(world)
        topo = ndv4_topology(world)
        fair = moe_step_time(cfg, topo, FAIRSEQ_FEATURES).total
        tutel = moe_step_time(cfg, topo, TUTEL_FEATURES).total
        assert 2.5 < fair / tutel < 12

    def test_compute_only_below_total(self, world):
        cfg = fig23_cfg(world)
        topo = ndv4_topology(world)
        bd = moe_step_time(cfg, topo, TUTEL_FEATURES)
        assert bd.compute_only <= bd.total


class TestBreakdownFields:
    def test_total_is_sum(self):
        cfg = fig23_cfg(64)
        topo = ndv4_topology(64)
        bd = moe_step_time(cfg, topo, TUTEL_FEATURES)
        assert bd.total == pytest.approx(
            bd.gate + bd.encode + bd.decode + bd.segment + bd.param_comm)

    def test_inference_faster(self):
        cfg = fig23_cfg(64)
        topo = ndv4_topology(64)
        train = moe_step_time(cfg, topo, TUTEL_FEATURES, training=True)
        infer = moe_step_time(cfg, topo, TUTEL_FEATURES, training=False)
        assert infer.total < train.total

    def test_static_strategy_respected(self):
        cfg = fig23_cfg(64)
        topo = ndv4_topology(64)
        bd = moe_step_time(cfg, topo, FAIRSEQ_FEATURES)
        assert bd.pipeline_strategy == FAIRSEQ_FEATURES.pipeline_strategy

    def test_feature_with_override(self):
        custom = TUTEL_FEATURES.with_(name="x", fast_kernels=False)
        assert custom.fast_kernels is False
        assert TUTEL_FEATURES.fast_kernels is True
