"""Gradient checks for the differentiable MoE dispatch/combine ops."""

import numpy as np
import pytest

from repro.autograd.moe_ops import (
    batched_expert_ffn_input,
    moe_combine,
    moe_dispatch,
)
from repro.autograd.tensor import Tensor
from repro.moe.gating import softmax, top_k_routing


@pytest.fixture(autouse=True)
def _float64_substrate():
    """Numeric gradient checks stay in float64: central differences at
    float32 lose half the mantissa to roundoff (see ISSUE 6 / DESIGN
    dtype conventions)."""
    from repro.core.substrate import substrate_dtype
    with substrate_dtype(np.float64):
        yield


def routing(t=12, e=4, k=2, capacity=None, seed=0):
    rng = np.random.default_rng(seed)
    probs = softmax(rng.normal(size=(t, e)))
    crit = top_k_routing(probs, k, capacity=capacity or t)
    return crit, rng


class TestMoeDispatch:
    def test_forward_matches_kernel(self):
        crit, rng = routing()
        x = rng.normal(size=(12, 5))
        from repro.moe.encode import fast_encode
        out = moe_dispatch(Tensor(x), crit)
        np.testing.assert_allclose(out.data, fast_encode(x, crit))

    def test_gradient_numeric(self):
        crit, rng = routing(t=6, e=3, k=2, seed=1)
        x = rng.normal(size=(6, 4))
        w = rng.normal(size=(3, crit.capacity, 4))
        t = Tensor(x, requires_grad=True)
        (moe_dispatch(t, crit) * Tensor(w)).sum().backward()
        eps = 1e-6
        from repro.moe.encode import fast_encode
        numeric = np.zeros_like(x)
        for idx in np.ndindex(x.shape):
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            numeric[idx] = (np.sum(fast_encode(xp, crit) * w)
                            - np.sum(fast_encode(xm, crit) * w)) / (2 * eps)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)


class TestMoeCombine:
    def test_forward_uses_live_gates(self):
        crit, rng = routing()
        z = rng.normal(size=(4, crit.capacity, 5))
        doubled = Tensor(2.0 * crit.gates)
        out2 = moe_combine(Tensor(z), doubled, crit)
        out1 = moe_combine(Tensor(z), Tensor(crit.gates.copy()), crit)
        np.testing.assert_allclose(out2.data, 2.0 * out1.data)

    def test_gradients_numeric(self):
        crit, rng = routing(t=5, e=3, k=2, seed=2)
        z = rng.normal(size=(3, crit.capacity, 4))
        g = crit.gates.copy()
        w = rng.normal(size=(5, 4))

        zt = Tensor(z, requires_grad=True)
        gt = Tensor(g, requires_grad=True)
        (moe_combine(zt, gt, crit) * Tensor(w)).sum().backward()

        from repro.moe.encode import fast_decode
        from repro.moe.gating import RoutingCriteria

        def value(zv, gv):
            live = RoutingCriteria(idxs=crit.idxs,
                                   locations=crit.locations,
                                   gates=np.where(crit.valid, gv, 0.0),
                                   capacity=crit.capacity,
                                   num_experts=crit.num_experts)
            return float(np.sum(fast_decode(zv, live) * w))

        eps = 1e-6
        nz = np.zeros_like(z)
        for idx in np.ndindex(z.shape):
            zp, zm = z.copy(), z.copy()
            zp[idx] += eps
            zm[idx] -= eps
            nz[idx] = (value(zp, g) - value(zm, g)) / (2 * eps)
        np.testing.assert_allclose(zt.grad, nz, atol=1e-5)

        ng = np.zeros_like(g)
        for idx in np.ndindex(g.shape):
            gp, gm = g.copy(), g.copy()
            gp[idx] += eps
            gm[idx] -= eps
            ng[idx] = (value(z, gp) - value(z, gm)) / (2 * eps)
        np.testing.assert_allclose(gt.grad, ng, atol=1e-5)

    def test_rejects_gate_shape_mismatch(self):
        crit, rng = routing()
        z = Tensor(rng.normal(size=(4, crit.capacity, 5)))
        with pytest.raises(ValueError):
            moe_combine(z, Tensor(np.zeros((3, 12))), crit)

    def test_dropped_slots_get_no_gate_grad(self):
        crit, rng = routing(t=16, e=2, k=1, capacity=2, seed=3)
        assert crit.dropped_fraction() > 0
        z = Tensor(rng.normal(size=(2, 2, 4)), requires_grad=True)
        g = Tensor(np.ones_like(crit.gates), requires_grad=True)
        moe_combine(z, g, crit).sum().backward()
        assert (g.grad[~crit.valid] == 0).all()


class TestBatchedExpertGemm:
    def test_forward(self):
        rng = np.random.default_rng(4)
        d = rng.normal(size=(3, 5, 4))
        w = rng.normal(size=(3, 4, 6))
        out = batched_expert_ffn_input(Tensor(d), Tensor(w))
        np.testing.assert_allclose(out.data, np.einsum("ecm,emv->ecv",
                                                       d, w))

    def test_gradients_numeric(self):
        rng = np.random.default_rng(5)
        d = rng.normal(size=(2, 3, 4))
        w = rng.normal(size=(2, 4, 3))
        dt = Tensor(d, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        batched_expert_ffn_input(dt, wt).sum().backward()

        def value(dv, wv):
            return float(np.einsum("ecm,emv->ecv", dv, wv).sum())
        eps = 1e-6
        nd = np.zeros_like(d)
        for idx in np.ndindex(d.shape):
            dp, dm = d.copy(), d.copy()
            dp[idx] += eps
            dm[idx] -= eps
            nd[idx] = (value(dp, w) - value(dm, w)) / (2 * eps)
        np.testing.assert_allclose(dt.grad, nd, atol=1e-5)
        nw = np.zeros_like(w)
        for idx in np.ndindex(w.shape):
            wp, wm = w.copy(), w.copy()
            wp[idx] += eps
            wm[idx] -= eps
            nw[idx] = (value(d, wp) - value(d, wm)) / (2 * eps)
        np.testing.assert_allclose(wt.grad, nw, atol=1e-5)
