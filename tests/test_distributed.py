"""Tests for the multi-rank functional MoE layer."""

import numpy as np
import pytest

from repro.core.config import MoEConfig
from repro.moe.capacity import CapacityPolicy
from repro.moe.distributed import (
    distributed_moe_forward,
    shard_experts,
)
from repro.moe.layer import MoELayerParams, moe_layer_forward


def build(world=4, experts_per_gpu=2, tokens=16, model_dim=8,
          hidden=16, top_k=2, f=8.0, seed=0):
    rng = np.random.default_rng(seed)
    cfg = MoEConfig(world_size=world, experts_per_gpu=experts_per_gpu,
                    model_dim=model_dim, hidden_dim=hidden,
                    tokens_per_gpu=tokens, top_k=top_k,
                    capacity_factor=f)
    params = MoELayerParams.init(num_experts=cfg.num_global_experts,
                                 model_dim=model_dim, hidden_dim=hidden,
                                 rng=rng, top_k=top_k)
    xs = [rng.normal(size=(tokens, model_dim)) for _ in range(world)]
    return cfg, params, xs


class TestShardExperts:
    def test_slices_cover_all(self):
        _, params, _ = build()
        shards = shard_experts(params.experts, 4)
        recon = np.concatenate([s.w1 for s in shards])
        np.testing.assert_array_equal(recon, params.experts.w1)

    def test_rejects_indivisible(self):
        _, params, _ = build()
        with pytest.raises(ValueError):
            shard_experts(params.experts, 3)


class TestDistributedForward:
    @pytest.mark.parametrize("world,de", [(2, 1), (2, 2), (4, 2), (8, 1)])
    def test_matches_single_process(self, world, de):
        # With ample capacity nothing is dropped and the distributed
        # data path must agree exactly with the local layer per rank.
        cfg, params, xs = build(world=world, experts_per_gpu=de)
        dist = distributed_moe_forward(xs, params, cfg)
        for r, x in enumerate(xs):
            local = moe_layer_forward(
                x, params, capacity=CapacityPolicy(cfg.capacity_factor))
            np.testing.assert_allclose(dist.outputs[r], local.output,
                                       atol=1e-10)

    def test_flexible_and_raw_layouts_agree(self):
        cfg, params, xs = build(world=4, experts_per_gpu=2)
        flex = distributed_moe_forward(xs, params, cfg, flexible=True)
        raw = distributed_moe_forward(xs, params, cfg, flexible=False)
        for r in range(4):
            np.testing.assert_allclose(flex.outputs[r], raw.outputs[r],
                                       atol=1e-10)

    def test_capacity_drops_per_source_gpu(self):
        cfg, params, xs = build(world=2, experts_per_gpu=1, tokens=64,
                                top_k=1, f=0.25)
        dist = distributed_moe_forward(xs, params, cfg)
        assert dist.dropped_fraction > 0

    def test_rejects_wrong_rank_count(self):
        cfg, params, xs = build()
        with pytest.raises(ValueError):
            distributed_moe_forward(xs[:-1], params, cfg)

    def test_rejects_expert_mismatch(self):
        cfg, params, xs = build()
        bad_cfg = cfg.with_(experts_per_gpu=1)
        with pytest.raises(ValueError):
            distributed_moe_forward(xs, params, bad_cfg)

    def test_rejects_adaptive_capacity(self):
        # Adaptive (f <= 0) policies must be resolved to a concrete
        # factor before the distributed dispatch.
        cfg, params, xs = build()
        adaptive = MoEConfig(
            world_size=cfg.world_size,
            experts_per_gpu=cfg.experts_per_gpu,
            model_dim=cfg.model_dim, hidden_dim=cfg.hidden_dim,
            tokens_per_gpu=cfg.tokens_per_gpu, top_k=cfg.top_k,
            capacity_factor=1.0)
        object.__setattr__(adaptive, "capacity_factor", -2.0)
        with pytest.raises(ValueError):
            distributed_moe_forward(xs, params, adaptive)

    def test_aux_loss_averaged(self):
        cfg, params, xs = build()
        dist = distributed_moe_forward(xs, params, cfg)
        assert dist.l_aux > 0
