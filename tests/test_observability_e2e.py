"""End-to-end acceptance test for the observability stack (ISSUE 4).

Trains a small MoE with an injected expert failure and a forced
routing collapse, and asserts the full chain holds together: the run
directory carries a manifest and event stream, the health monitor
raises ``dead_expert`` and ``entropy_drift`` alerts at deterministic
steps, ``RunStore.diff`` reports deltas between two seeded runs, and
the rendered dashboard is valid standalone HTML with alert markers.
"""

import json

import numpy as np
import pytest

from repro.nn.models import MoEClassifier
from repro.obs.dashboard import write_dashboard
from repro.obs.health import HealthConfig, HealthMonitor
from repro.obs.runs import RunStore, recording_run
from repro.train.data import ClusteredTokenTask
from repro.train.trainer import train_model

from tests.test_dashboard import check_well_formed

FAIL_STEP = 6       # expert 3 of layer 0 dies here
COLLAPSE_STEP = 14  # gate weights zeroed -> all tokens to experts 0..k-1
DEAD_WINDOW = 4
STEPS = 24


@pytest.fixture(scope="module")
def splits():
    task = ClusteredTokenTask(num_clusters=8, input_dim=8,
                              num_classes=4, noise=0.4, seed=0)
    return task.sample(1024), task.sample(512)


def fresh_model(seed=0):
    return MoEClassifier(8, 16, 32, 4, num_blocks=2, num_experts=8,
                         rng=np.random.default_rng(seed), top_k=2)


def chaos_hook(step, model):
    if step == FAIL_STEP:
        model.fail_expert(0, 3)
    if step == COLLAPSE_STEP:
        # Zero gate weights -> uniform logits -> stable argsort routes
        # every token to experts 0..k-1: normalized entropy collapses
        # to log(k)/log(E) = 1/3 < entropy_floor.
        model.moe_layers()[0].gate.weight.data[:] = 0.0


def run_scenario(root, run_id, seed, splits):
    train, test = splits
    with recording_run(root=root, run_id=run_id, seed=seed,
                       config={"scenario": "chaos-e2e"},
                       created_at=float(seed)) as run:
        result = train_model(
            fresh_model(seed), train, test, steps=STEPS,
            batch_size=64, seed=seed, step_hook=chaos_hook,
            health=HealthMonitor(HealthConfig(dead_window=DEAD_WINDOW,
                                              warmup_steps=4)))
    assert result.run_id == run.manifest.run_id
    return result


@pytest.fixture(scope="module")
def scenario(tmp_path_factory, splits):
    root = tmp_path_factory.mktemp("runs")
    result = run_scenario(root, "chaos-a", seed=0, splits=splits)
    return root, result


class TestRunArtifacts:
    def test_run_directory_layout(self, scenario):
        root, _ = scenario
        run_dir = root / "chaos-a"
        assert (run_dir / "manifest.json").is_file()
        assert (run_dir / "events.jsonl").is_file()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "complete"
        assert manifest["seed"] == 0
        assert manifest["fingerprint"]
        assert manifest["substrate"] == "functional"

    def test_event_stream_covers_the_run(self, scenario):
        root, _ = scenario
        events = RunStore(root).events("chaos-a")
        kinds = [e["kind"] for e in events]
        assert kinds.count("step") == STEPS
        assert kinds.count("routing") == STEPS      # one MoE layer
        assert kinds.count("fault") == 1
        assert kinds.count("eval") == 1
        fault = next(e for e in events if e["kind"] == "fault")
        assert fault["data"] == {"kind": "expert_failure", "expert": 3}
        assert fault["step"] == FAIL_STEP


class TestHealthAlerts:
    def test_dead_expert_at_the_right_step(self, scenario):
        _, result = scenario
        dead = [a for a in result.health_alerts
                if a.kind == "dead_expert"]
        assert dead, "expert failure never detected"
        assert dead[0].step == FAIL_STEP + DEAD_WINDOW - 1
        assert dead[0].expert == 3 and dead[0].layer == 0
        assert dead[0].severity == "critical"

    def test_entropy_collapse_is_critical(self, scenario):
        _, result = scenario
        collapse = [a for a in result.health_alerts
                    if a.kind == "entropy_drift"
                    and a.severity == "critical"]
        assert collapse and collapse[0].step == COLLAPSE_STEP
        # log(2)/log(8): both top-k slots pile onto experts 0..1
        assert collapse[0].value == pytest.approx(1 / 3, abs=1e-6)

    def test_alerts_mirrored_into_event_stream(self, scenario):
        root, result = scenario
        events = RunStore(root).events("chaos-a")
        # The declarative AlertEngine also writes "alert" events
        # (marked by an "alertname" key); here we check the health
        # monitor's own stream specifically.
        streamed = [(e["data"]["kind"], e["step"])
                    for e in events if e["kind"] == "alert"
                    and "alertname" not in e["data"]]
        assert streamed == [(a.kind, a.step)
                            for a in result.health_alerts]

    def test_deterministic_under_fixed_seed(self, tmp_path, splits,
                                            scenario):
        _, first = scenario
        repeat = run_scenario(tmp_path, "chaos-b", seed=0,
                              splits=splits)
        assert [(a.kind, a.step, a.layer, a.expert)
                for a in repeat.health_alerts] == \
               [(a.kind, a.step, a.layer, a.expert)
                for a in first.health_alerts]


class TestDiffAndDashboard:
    def test_diff_between_two_seeds(self, scenario, splits):
        root, _ = scenario
        run_scenario(root, "chaos-c", seed=1, splits=splits)
        deltas = RunStore(root).diff("chaos-a", "chaos-c")
        names = {d.name for d in deltas}
        assert "summary.final_train_loss" in names
        assert any(d.delta not in (None, 0.0) for d in deltas)

    def test_dashboard_renders_with_markers(self, scenario, tmp_path):
        root, _ = scenario
        out = write_dashboard(RunStore(root), "chaos-a",
                              tmp_path / "dash.html")
        doc = out.read_text()
        parser = check_well_formed(doc)
        assert parser.tag_counts.get("svg", 0) >= 3
        assert "dead_expert" in doc and "entropy_drift" in doc
        assert "status-critical" in doc      # alert markers styled
        assert "expert_failure" in doc       # fault timeline entry
