"""Numerical gradient checks for the autograd engine."""

import numpy as np
import pytest

from repro.autograd.functional import (
    concat,
    cross_entropy,
    exp,
    gather_rows,
    gelu,
    layer_norm,
    log,
    log_softmax,
    relu,
    softmax,
    take_along,
    tanh,
)
from repro.autograd.optim import SGD, Adam, clip_grad_norm
from repro.autograd.tensor import Tensor


@pytest.fixture(autouse=True)
def _float64_substrate():
    """Numeric gradient checks stay in float64: central differences at
    float32 lose half the mantissa to roundoff (see ISSUE 6 / DESIGN
    dtype conventions)."""
    from repro.core.substrate import substrate_dtype
    with substrate_dtype(np.float64):
        yield


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``x``."""
    grad = np.zeros_like(x)
    for idx in np.ndindex(x.shape):
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        grad[idx] = (fn(xp) - fn(xm)) / (2 * eps)
    return grad


def check_grad(build, x: np.ndarray, atol=1e-5):
    """Compare autograd and numeric gradients of ``sum(build(t))``."""
    t = Tensor(x, requires_grad=True)
    out = build(t)
    out.sum().backward()
    numeric = numeric_grad(lambda v: float(build(Tensor(v)).data.sum()), x)
    np.testing.assert_allclose(t.grad, numeric, atol=atol)


RNG = np.random.default_rng(0)


class TestArithmetic:
    def test_add(self):
        other = Tensor(RNG.normal(size=(3, 4)))
        check_grad(lambda t: t + other, RNG.normal(size=(3, 4)))

    def test_add_broadcast(self):
        bias = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0))

    def test_mul(self):
        other = RNG.normal(size=(3, 4))
        check_grad(lambda t: t * Tensor(other), RNG.normal(size=(3, 4)))

    def test_div(self):
        denom = RNG.normal(size=(3, 4)) + 3.0
        check_grad(lambda t: t / Tensor(denom), RNG.normal(size=(3, 4)))

    def test_pow(self):
        check_grad(lambda t: t ** 3.0, RNG.normal(size=(4,)) + 2.0)

    def test_neg_sub(self):
        check_grad(lambda t: (-t) - Tensor(np.ones((2, 2))),
                   RNG.normal(size=(2, 2)))

    def test_rsub_rmul(self):
        check_grad(lambda t: 2.0 - 3.0 * t, RNG.normal(size=(3,)))

    def test_matmul_grad_both_sides(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        na = numeric_grad(lambda v: float((v @ b.data).sum()), a.data)
        nb = numeric_grad(lambda v: float((a.data @ v).sum()), b.data)
        np.testing.assert_allclose(a.grad, na, atol=1e-5)
        np.testing.assert_allclose(b.grad, nb, atol=1e-5)

    def test_batched_matmul(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)


class TestShapes:
    def test_reshape(self):
        check_grad(lambda t: (t.reshape(6) * Tensor(np.arange(6.0))),
                   RNG.normal(size=(2, 3)))

    def test_transpose(self):
        w = RNG.normal(size=(3, 2))
        check_grad(lambda t: t.T * Tensor(w), RNG.normal(size=(2, 3)))

    def test_sum_axis_keepdims(self):
        w = Tensor(RNG.normal(size=(3, 1)))
        check_grad(lambda t: t.sum(axis=1, keepdims=True) * w,
                   RNG.normal(size=(3, 4)))

    def test_mean(self):
        check_grad(lambda t: t.mean(axis=0), RNG.normal(size=(5, 2)))

    def test_concat(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        concat([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((4, 3)))


class TestNonlinearities:
    def test_relu(self):
        check_grad(relu, RNG.normal(size=(4, 4)) + 0.05)

    def test_gelu(self):
        check_grad(gelu, RNG.normal(size=(4, 4)))

    def test_tanh(self):
        check_grad(tanh, RNG.normal(size=(3, 3)))

    def test_exp_log(self):
        check_grad(exp, RNG.normal(size=(3,)))
        check_grad(log, RNG.normal(size=(3,)) ** 2 + 1.0)

    def test_softmax(self):
        w = RNG.normal(size=(3, 5))
        check_grad(lambda t: softmax(t) * Tensor(w),
                   RNG.normal(size=(3, 5)))

    def test_log_softmax(self):
        w = RNG.normal(size=(3, 5))
        check_grad(lambda t: log_softmax(t) * Tensor(w),
                   RNG.normal(size=(3, 5)))

    def test_layer_norm(self):
        weight = Tensor(RNG.normal(size=(6,)) + 1.0, requires_grad=True)
        bias = Tensor(RNG.normal(size=(6,)), requires_grad=True)
        x = RNG.normal(size=(4, 6))
        check_grad(lambda t: layer_norm(t, weight, bias), x, atol=1e-4)

    def test_layer_norm_param_grads(self):
        weight = Tensor(np.ones(4), requires_grad=True)
        bias = Tensor(np.zeros(4), requires_grad=True)
        x = Tensor(RNG.normal(size=(8, 4)), requires_grad=True)
        layer_norm(x, weight, bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 8.0))
        assert weight.grad is not None


class TestGathers:
    def test_gather_rows(self):
        idx = np.array([0, 2, 2, 1])
        w = RNG.normal(size=(4, 3))
        check_grad(lambda t: gather_rows(t, idx) * Tensor(w),
                   RNG.normal(size=(3, 3)))

    def test_take_along(self):
        idx = RNG.integers(0, 5, size=(4, 2))
        w = RNG.normal(size=(4, 2))
        check_grad(lambda t: take_along(t, idx, axis=1) * Tensor(w),
                   RNG.normal(size=(4, 5)))

    def test_take_along_duplicate_indices_accumulate(self):
        x = Tensor(RNG.normal(size=(1, 3)), requires_grad=True)
        idx = np.array([[1, 1]])
        take_along(x, idx, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 2.0, 0.0]])


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = RNG.normal(size=(6, 4))
        labels = RNG.integers(0, 4, 6)
        t = Tensor(logits, requires_grad=True)
        loss = cross_entropy(t, labels)
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1,
                                                    keepdims=True))
        expected = -logp[np.arange(6), labels].mean()
        assert float(loss.data) == pytest.approx(expected)

    def test_gradient(self):
        logits = RNG.normal(size=(5, 3))
        labels = RNG.integers(0, 3, 5)
        t = Tensor(logits, requires_grad=True)
        cross_entropy(t, labels).backward()
        numeric = numeric_grad(
            lambda v: float(cross_entropy(Tensor(v), labels).data),
            logits)
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(3, dtype=int))


class TestBackwardMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.zeros((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t + t).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(3, 2.0))

    def test_no_grad_for_constants(self):
        t = Tensor(np.ones(3))
        out = (t * 2).sum()
        out.backward()
        assert t.grad is None

    def test_detach_stops_gradient(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t.detach() * 2).sum().backward()
        assert t.grad is None

    def test_deep_graph_no_recursion_error(self):
        t = Tensor(np.ones(2), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(2))


class TestOptimizers:
    def test_sgd_descends(self):
        w = Tensor(np.array([5.0]), requires_grad=True)
        opt = SGD([w], lr=0.1)
        for _ in range(50):
            loss = (w * w).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(float(w.data[0])) < 0.1

    def test_sgd_momentum_accelerates(self):
        def run(momentum):
            w = Tensor(np.array([5.0]), requires_grad=True)
            opt = SGD([w], lr=0.01, momentum=momentum)
            for _ in range(30):
                loss = (w * w).sum()
                opt.zero_grad()
                loss.backward()
                opt.step()
            return abs(float(w.data[0]))
        assert run(0.9) < run(0.0)

    def test_adam_descends(self):
        w = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        opt = Adam([w], lr=0.05)
        for _ in range(200):
            loss = (w * w).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.abs(w.data).max() < 0.05

    def test_weight_decay_shrinks(self):
        w = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        loss = (w * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert float(w.data[0]) < 1.0

    def test_clip_grad_norm(self):
        w = Tensor(np.ones(4), requires_grad=True)
        w.grad = np.full(4, 10.0)
        norm = clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-6)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.ones(1), requires_grad=True)], lr=0)
        with pytest.raises(ValueError):
            Adam([Tensor(np.ones(1), requires_grad=True)], lr=-1)
