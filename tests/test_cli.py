"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import discover_benches, main, run_bench


class TestDiscovery:
    def test_all_paper_artifacts_present(self):
        benches = discover_benches()
        expected = {"fig01", "fig03", "fig05", "fig06", "fig07",
                    "fig10", "fig20", "fig21", "fig22", "fig23",
                    "fig24", "fig25", "tab01", "tab04", "tab05",
                    "tab07", "tab08", "tab09", "tab10", "tab11",
                    "tab12", "tab13"}
        assert expected <= set(benches)

    def test_ablations_distinct(self):
        benches = discover_benches()
        abl = {k for k in benches if k.startswith("abl")}
        assert len(abl) >= 2  # online search + hierarchy

    def test_paths_exist(self):
        for path in discover_benches().values():
            assert path.is_file()


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig20" in out
        assert "bench_fig20_2dh_scaling.py" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tutel" in out
        assert "2048 GPUs" in out

    def test_bench_runs(self, capsys):
        assert main(["bench", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out

    def test_unknown_bench_rejected(self):
        with pytest.raises(SystemExit):
            run_bench("fig99")

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestObsCommand:
    def test_obs_writes_valid_trace(self, tmp_path, capsys):
        import json

        from repro import obs as obs_module

        trace = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        assert main(["obs", "--trace", str(trace), "--jsonl", str(jsonl),
                     "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "compute_locations rewrite" in out
        assert "routing history" in out

        parsed = json.loads(trace.read_text())
        names = {e["name"] for e in parsed["traceEvents"]}
        assert {"gate", "encode", "expert_ffn", "decode", "step"} <= names
        assert jsonl.read_text().strip()
        # The command must clean up the process-wide observer.
        assert obs_module.get_observer() is None


class TestObsMetricsJson:
    def test_metrics_json_snapshot(self, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        assert main(["obs", "--steps", "2",
                     "--metrics-json", str(metrics)]) == 0
        snap = json.loads(metrics.read_text())
        assert {"counters", "gauges", "histograms"} <= set(snap)
        # Reservoir quantiles ride along in every histogram summary.
        any_hist = next(iter(snap["histograms"].values()))
        assert {"p50", "p95", "p99"} <= set(any_hist)


class TestAnalyzeCommand:
    def test_analyze_fig22_prints_attribution(self, capsys):
        assert main(["analyze", "fig22", "--world", "16"]) == 0
        out = capsys.readouterr().out
        assert "Per-stream attribution" in out
        assert "Critical path" in out
        assert "what-if bounds" in out
        assert "overlap efficiency" in out
        assert "faster" in out

    def test_analyze_trace_file_roundtrip(self, tmp_path, capsys):
        trace_in = tmp_path / "in.json"
        trace_out = tmp_path / "out.json"
        # First export a trace from the fig22 path...
        assert main(["analyze", "fig22", "--world", "16",
                     "--trace", str(trace_in)]) == 0
        capsys.readouterr()
        # ...then re-analyze the saved trace from disk.
        assert main(["analyze", str(trace_in),
                     "--trace", str(trace_out)]) == 0
        out = capsys.readouterr().out
        assert "Per-stream attribution" in out
        assert trace_out.is_file()

    def test_analyze_missing_file_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "no-such-trace.json"])


class TestRunsCommand:
    @pytest.fixture()
    def registry(self, tmp_path):
        from repro.obs.runs import RunWriter

        for run_id, stamp, seed, loss in (("alpha", 10.0, 0, 1.5),
                                          ("beta", 20.0, 1, 1.2)):
            w = RunWriter.create(root=tmp_path, run_id=run_id,
                                 seed=seed, config={"kind": "train"},
                                 created_at=stamp)
            w.emit("step", step=0, data={"loss": loss})
            w.emit("alert", step=0, data={
                "kind": "drop_rate", "severity": "warn",
                "message": "too many drops"})
            w.finalize(summary={"final_train_loss": loss})
        return tmp_path

    def test_runs_list(self, registry, capsys):
        assert main(["runs", "list", "--dir", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" in out
        assert "complete" in out

    def test_runs_list_empty(self, tmp_path, capsys):
        assert main(["runs", "list", "--dir",
                     str(tmp_path / "none")]) == 0
        assert "no runs under" in capsys.readouterr().out

    def test_runs_show(self, registry, capsys):
        assert main(["runs", "show", "alpha",
                     "--dir", str(registry)]) == 0
        out = capsys.readouterr().out
        assert '"run_id": "alpha"' in out
        assert "step=1" in out and "alert=1" in out
        assert "drop_rate" in out

    def test_runs_diff(self, registry, capsys):
        assert main(["runs", "diff", "alpha", "beta",
                     "--dir", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "summary.final_train_loss" in out
        assert "-0.3" in out

    def test_runs_diff_changed_only_identical(self, registry, capsys):
        assert main(["runs", "diff", "alpha", "alpha",
                     "--changed-only", "--dir", str(registry)]) == 0
        assert "no differing metrics" in capsys.readouterr().out

    def test_runs_gc_dry_run_then_real(self, registry, capsys):
        assert main(["runs", "gc", "--keep", "1", "--dry-run",
                     "--dir", str(registry)]) == 0
        assert "would remove alpha" in capsys.readouterr().out
        assert (registry / "alpha").is_dir()
        assert main(["runs", "gc", "--keep", "1",
                     "--dir", str(registry)]) == 0
        assert "removed alpha" in capsys.readouterr().out
        assert not (registry / "alpha").exists()

    def test_runs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["runs"])

    def test_unknown_run_exits_cleanly(self, registry):
        with pytest.raises(SystemExit, match="no run matching"):
            main(["runs", "show", "zzz", "--dir", str(registry)])
        with pytest.raises(SystemExit, match="no run matching"):
            main(["dashboard", "zzz", "--dir", str(registry)])

    def test_dashboard_command(self, registry, tmp_path, capsys):
        out_html = tmp_path / "dash.html"
        assert main(["dashboard", "latest", "-o", str(out_html),
                     "--dir", str(registry)]) == 0
        assert "wrote" in capsys.readouterr().out
        text = out_html.read_text()
        assert text.lstrip().startswith("<!DOCTYPE html>")
        assert "beta" in text            # latest run is beta

    def test_bench_records_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["bench", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "[runs] recording run" in out
        from repro.obs.runs import RunStore

        store = RunStore(tmp_path)
        run_id = store.latest()
        assert store.manifest(run_id).status == "complete"
        kinds = {e["kind"] for e in store.events(run_id)}
        assert "bench_table" in kinds


class TestChaosCommand:
    def test_chaos_smoke(self, tmp_path, capsys):
        from repro import obs as obs_module

        trace = tmp_path / "chaos.jsonl"
        assert main(["chaos", "--seed", "0", "--smoke",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "chaos scenario (seed 0)" in out
        assert "fault-free makespan" in out
        assert "fault.recovered" in out
        assert trace.read_text().strip()
        assert obs_module.get_observer() is None


class TestProfileCommand:
    def test_profile_layer_writes_artifacts(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "bench"))
        trace = tmp_path / "trace.json"
        summary = tmp_path / "summary.json"
        assert main(["profile", "layer", "--trace", str(trace),
                     "--json", str(summary)]) == 0
        out = capsys.readouterr().out
        assert "== profile ==" in out
        assert "moe_dispatch" in out and "expert_ffn" in out
        payload = json.loads(summary.read_text())
        assert payload["totals"]["flops"] > 0
        assert payload["peak_bytes"] > 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("ph") == "C" for e in events)  # counters
        assert (tmp_path / "bench"
                / "BENCH_profile_layer.json").exists()
        from repro.obs.runs import RunStore

        store = RunStore(tmp_path / "runs")
        manifest = store.manifest(store.latest())
        assert manifest.summary["profile.peak_bytes"] > 0

    def test_profile_step_matches_baseline_fingerprint(self, tmp_path,
                                                       monkeypatch,
                                                       capsys):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_RUNS_DIR", raising=False)
        assert main(["profile", "step"]) == 0
        capsys.readouterr()
        from repro.bench.report import BenchResult

        current = BenchResult.load(tmp_path / "BENCH_profile_step.json")
        baseline = BenchResult.load(
            "benchmarks/baselines/BENCH_profile_step.json")
        assert current.fingerprint == baseline.fingerprint

    def test_profile_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["profile", "weights"])


class TestCalibrateCommand:
    def test_calibrate_fast_writes_report(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "bench"))
        monkeypatch.delenv("REPRO_RUNS_DIR", raising=False)
        report_path = tmp_path / "cal.json"
        assert main(["calibrate", "--fast", "--json",
                     str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "sim_vs_measured_p95_err" in out
        assert "Per-class summary" in out
        payload = json.loads(report_path.read_text())
        assert payload["profile"] == "fast"
        assert (tmp_path / "bench" / "BENCH_calibration.json").exists()


class TestServeCommand:
    def test_serve_list(self, capsys):
        assert main(["serve", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("poisson_steady", "bursty_spike",
                     "diurnal_cycle", "brownout_surge"):
            assert name in out
        assert "SLO p99" in out

    def test_serve_requires_target(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_serve_unknown_workload_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["serve", "nope"])

    def test_serve_single_workload_passes(self, capsys):
        assert main(["serve", "poisson_steady", "--fast",
                     "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "serving SLO report" in out
        assert "PASS" in out
        # Both latency columns are reported side by side.
        assert "model_p99_ms" in out
        assert "measured_p99_ms" in out

    def test_serve_forced_slo_miss_exits_nonzero(self, capsys):
        assert main(["serve", "poisson_steady", "--fast",
                     "--seed", "0", "--p99-slo", "0.0001"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_serve_all_emits_bench_artifact(self, tmp_path, capsys,
                                            monkeypatch):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        monkeypatch.setenv("REPRO_BENCH_DIR", str(bench_dir))
        assert main(["serve", "--all", "--fast", "--seed", "0"]) == 0
        payload = json.loads(
            (bench_dir / "BENCH_serving.json").read_text())
        assert payload["artifact"] == "serving"
        assert payload["config"]["mode"] == "fast"
        names = {m["name"] for m in payload["metrics"]}
        for wl in ("poisson_steady", "bursty_spike", "diurnal_cycle",
                   "brownout_surge"):
            for metric in ("model_p50_ms", "model_p95_ms",
                           "model_p99_ms", "goodput_rps", "slo_pass"):
                assert f"{wl}.{metric}" in names
        # Modeled metrics gate exactly; measured ones are exempt.
        by_name = {m["name"]: m for m in payload["metrics"]}
        assert by_name["poisson_steady.model_p99_ms"]["tolerance"] == 0
        assert by_name["poisson_steady.measured_p99_ms"]["kind"] \
            == "measured"

    def test_serve_writes_prometheus_and_trace(self, tmp_path,
                                               capsys):
        prom = tmp_path / "serve.prom"
        trace = tmp_path / "serve-trace.json"
        assert main(["serve", "poisson_steady", "--fast",
                     "--seed", "0", "--prometheus", str(prom),
                     "--trace", str(trace)]) == 0
        from repro.obs.prometheus import parse_prometheus
        parsed = parse_prometheus(prom.read_text())
        assert parsed["serve_requests"]["samples"]["serve_requests"] > 0
        assert parsed["serve_gate"]["type"] == "summary"
        assert parsed["serve_gate"]["samples"]["serve_gate_count"] > 0
        payload = json.loads(trace.read_text())
        phases = {e.get("ph") for e in payload["traceEvents"]}
        assert {"X", "s", "f"} <= phases
        tracks = {e["args"]["name"]
                  for e in payload["traceEvents"]
                  if e.get("name") == "thread_name"}
        assert {"serve/requests", "serve/engine"} <= tracks

    def test_runs_show_surfaces_serving_summary(self, tmp_path,
                                                capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["serve", "poisson_steady", "--fast",
                     "--seed", "0"]) == 0
        capsys.readouterr()
        assert main(["runs", "show", "latest",
                     "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "serving summary:" in out
        assert "serve.workload" in out and "poisson_steady" in out
        assert "serve.model_p99_ms" in out
        assert "serve.slo_pass" in out
        # SLO verdict lines ride along.
        assert "[PASS] poisson_steady.model_p99_ms" in out


class TestRouteCommand:
    def test_route_fast_prints_whatif_table(self, capsys):
        assert main(["route", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "synthetic profile (seed 0)" in out
        assert "placement what-if" in out
        assert "round_robin" in out and "contiguous_x2" in out
        assert "self-affinity" in out

    def test_route_fast_emits_bench_artifact(self, tmp_path, capsys,
                                             monkeypatch):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        monkeypatch.setenv("REPRO_BENCH_DIR", str(bench_dir))
        assert main(["route", "--fast"]) == 0
        payload = json.loads(
            (bench_dir / "BENCH_routing.json").read_text())
        assert payload["artifact"] == "routing"
        assert payload["config"]["mode"] == "fast"
        by_name = {m["name"]: m for m in payload["metrics"]}
        for name in ("tokens", "load_gini", "self_affinity",
                     "round_robin.inter_node_hops",
                     "contiguous_x2.priced_ms"):
            assert name in by_name
            assert by_name[name]["tolerance"] == 0
            assert by_name[name]["kind"] == "model"

    def test_route_fast_is_deterministic(self, tmp_path, capsys,
                                         monkeypatch):
        records = []
        for sub in ("a", "b"):
            bench_dir = tmp_path / sub
            bench_dir.mkdir()
            monkeypatch.setenv("REPRO_BENCH_DIR", str(bench_dir))
            assert main(["route", "--fast"]) == 0
            payload = json.loads(
                (bench_dir / "BENCH_routing.json").read_text())
            records.append([(m["name"], m["value"])
                            for m in payload["metrics"]])
        assert records[0] == records[1]

    def test_route_fast_matches_committed_baseline(self, tmp_path,
                                                   capsys,
                                                   monkeypatch):
        from pathlib import Path

        baseline_path = (Path(__file__).resolve().parent.parent
                         / "benchmarks" / "baselines"
                         / "BENCH_routing.json")
        baseline = json.loads(baseline_path.read_text())
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        monkeypatch.setenv("REPRO_BENCH_DIR", str(bench_dir))
        assert main(["route", "--fast"]) == 0
        payload = json.loads(
            (bench_dir / "BENCH_routing.json").read_text())
        assert payload["fingerprint"] == baseline["fingerprint"]
        current = {m["name"]: m["value"] for m in payload["metrics"]}
        for m in baseline["metrics"]:
            assert current[m["name"]] == m["value"], m["name"]

    def test_route_writes_prometheus_gauges(self, tmp_path, capsys):
        prom = tmp_path / "route.prom"
        assert main(["route", "--fast",
                     "--prometheus", str(prom)]) == 0
        from repro.obs.prometheus import parse_prometheus
        parsed = parse_prometheus(prom.read_text())
        assert parsed["routing_load_gini"]["samples"][
            "routing_load_gini"] > 0
        assert any(name.startswith("routing_whatif_")
                   for name in parsed)

    def test_route_aggregates_recorded_run(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["serve", "poisson_steady", "--fast",
                     "--seed", "0"]) == 0
        capsys.readouterr()
        assert main(["route", "latest", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "aggregated run" in out
        assert "placement what-if" in out

    def test_route_without_runs_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["route", "latest", "--dir",
                  str(tmp_path / "none")])


class TestRunsShowEventsFilter:
    def test_filter_prints_matching_events_as_jsonl(self, tmp_path,
                                                    capsys):
        from repro.obs.runs import RunWriter

        w = RunWriter.create(root=tmp_path, run_id="f1", seed=0,
                             config={"kind": "train"}, created_at=1.0)
        w.emit("step", step=0, data={"loss": 1.0})
        w.emit("routing_affinity", step=0,
               data={"schema": 1, "transitions": [[[1]]]})
        w.emit("routing_affinity", step=1,
               data={"schema": 1, "transitions": [[[2]]]})
        w.finalize(summary={})
        assert main(["runs", "show", "f1", "--dir", str(tmp_path),
                     "--events", "routing_affinity"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2
        events = [json.loads(line) for line in out]
        assert all(e["kind"] == "routing_affinity" for e in events)
        assert events[1]["data"]["transitions"] == [[[2]]]
        # The manifest dump is suppressed in filter mode.
        assert not any("run_id" in line for line in out)

    def test_filter_with_no_matches_says_so(self, tmp_path, capsys):
        from repro.obs.runs import RunWriter

        w = RunWriter.create(root=tmp_path, run_id="f2", seed=0,
                             config={"kind": "train"}, created_at=1.0)
        w.emit("step", step=0, data={"loss": 1.0})
        w.finalize(summary={})
        assert main(["runs", "show", "f2", "--dir", str(tmp_path),
                     "--events", "routing_load"]) == 0
        assert "no 'routing_load' events" in capsys.readouterr().out
