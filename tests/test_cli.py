"""Tests for the command-line interface."""

import pytest

from repro.cli import discover_benches, main, run_bench


class TestDiscovery:
    def test_all_paper_artifacts_present(self):
        benches = discover_benches()
        expected = {"fig01", "fig03", "fig05", "fig06", "fig07",
                    "fig10", "fig20", "fig21", "fig22", "fig23",
                    "fig24", "fig25", "tab01", "tab04", "tab05",
                    "tab07", "tab08", "tab09", "tab10", "tab11",
                    "tab12", "tab13"}
        assert expected <= set(benches)

    def test_ablations_distinct(self):
        benches = discover_benches()
        abl = {k for k in benches if k.startswith("abl")}
        assert len(abl) >= 2  # online search + hierarchy

    def test_paths_exist(self):
        for path in discover_benches().values():
            assert path.is_file()


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig20" in out
        assert "bench_fig20_2dh_scaling.py" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tutel" in out
        assert "2048 GPUs" in out

    def test_bench_runs(self, capsys):
        assert main(["bench", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6a" in out

    def test_unknown_bench_rejected(self):
        with pytest.raises(SystemExit):
            run_bench("fig99")

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestObsCommand:
    def test_obs_writes_valid_trace(self, tmp_path, capsys):
        import json

        from repro import obs as obs_module

        trace = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        assert main(["obs", "--trace", str(trace), "--jsonl", str(jsonl),
                     "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "compute_locations rewrite" in out
        assert "routing history" in out

        parsed = json.loads(trace.read_text())
        names = {e["name"] for e in parsed["traceEvents"]}
        assert {"gate", "encode", "expert_ffn", "decode", "step"} <= names
        assert jsonl.read_text().strip()
        # The command must clean up the process-wide observer.
        assert obs_module.get_observer() is None


class TestObsMetricsJson:
    def test_metrics_json_snapshot(self, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        assert main(["obs", "--steps", "2",
                     "--metrics-json", str(metrics)]) == 0
        snap = json.loads(metrics.read_text())
        assert {"counters", "gauges", "histograms"} <= set(snap)
        # Reservoir quantiles ride along in every histogram summary.
        any_hist = next(iter(snap["histograms"].values()))
        assert {"p50", "p95", "p99"} <= set(any_hist)


class TestAnalyzeCommand:
    def test_analyze_fig22_prints_attribution(self, capsys):
        assert main(["analyze", "fig22", "--world", "16"]) == 0
        out = capsys.readouterr().out
        assert "Per-stream attribution" in out
        assert "Critical path" in out
        assert "what-if bounds" in out
        assert "overlap efficiency" in out
        assert "faster" in out

    def test_analyze_trace_file_roundtrip(self, tmp_path, capsys):
        trace_in = tmp_path / "in.json"
        trace_out = tmp_path / "out.json"
        # First export a trace from the fig22 path...
        assert main(["analyze", "fig22", "--world", "16",
                     "--trace", str(trace_in)]) == 0
        capsys.readouterr()
        # ...then re-analyze the saved trace from disk.
        assert main(["analyze", str(trace_in),
                     "--trace", str(trace_out)]) == 0
        out = capsys.readouterr().out
        assert "Per-stream attribution" in out
        assert trace_out.is_file()

    def test_analyze_missing_file_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "no-such-trace.json"])


class TestChaosCommand:
    def test_chaos_smoke(self, tmp_path, capsys):
        from repro import obs as obs_module

        trace = tmp_path / "chaos.jsonl"
        assert main(["chaos", "--seed", "0", "--smoke",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "chaos scenario (seed 0)" in out
        assert "fault-free makespan" in out
        assert "fault.recovered" in out
        assert trace.read_text().strip()
        assert obs_module.get_observer() is None
