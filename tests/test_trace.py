"""Tests for the chrome-trace exporter."""

import json

from repro.cluster.simulator import simulate
from repro.cluster.trace import save_chrome_trace, to_chrome_trace
from repro.cluster.topology import ndv4_topology
from repro.core.config import MoEConfig
from repro.pipeline.schedule import PipelineStrategy, build_pipeline_schedule


def pipeline_result(degree=4):
    cfg = MoEConfig(world_size=64, experts_per_gpu=2, model_dim=1024,
                    hidden_dim=1024, tokens_per_gpu=4096, top_k=2)
    schedule = build_pipeline_schedule(cfg, ndv4_topology(64),
                                       PipelineStrategy(degree=degree))
    return simulate(schedule)


class TestChromeTrace:
    def test_event_per_op(self):
        result = pipeline_result(degree=2)
        events = to_chrome_trace(result)
        assert len(events) == len(result.spans)

    def test_complete_events_have_duration(self):
        events = to_chrome_trace(pipeline_result())
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        assert all(e["dur"] > 0 for e in complete)

    def test_barrier_is_instant_event(self):
        events = to_chrome_trace(pipeline_result())
        instants = [e for e in events if e["ph"] == "i"]
        assert any(e["name"] == "barrier" for e in instants)

    def test_streams_become_threads(self):
        events = to_chrome_trace(pipeline_result())
        tids = {e["tid"] for e in events}
        assert {"comm", "compute"} <= tids

    def test_events_sorted_by_start(self):
        events = to_chrome_trace(pipeline_result())
        starts = [e["ts"] for e in events]
        assert starts == sorted(starts)

    def test_save_roundtrip(self, tmp_path):
        result = pipeline_result(degree=2)
        out = save_chrome_trace(result, tmp_path / "trace.json")
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"

    def test_time_scale(self):
        result = pipeline_result(degree=1)
        us = to_chrome_trace(result, time_scale=1e6)
        ms = to_chrome_trace(result, time_scale=1e3)
        assert us[-1]["ts"] == 1000 * ms[-1]["ts"]

    def test_args_carry_replay_fields(self):
        # uid/deps/work_seconds make the trace machine-replayable
        # (load_sim_trace) on top of being viewable in Perfetto.
        events = to_chrome_trace(pipeline_result(degree=2))
        spans = [e for e in events if e["ph"] in ("X", "i")]
        for e in spans:
            assert "uid" in e["args"]
            assert "deps" in e["args"]
            assert "work_seconds" in e["args"]

    def test_default_category_is_sim(self):
        events = to_chrome_trace(pipeline_result(degree=1))
        assert {e["cat"] for e in events} == {"sim"}

    def test_critical_argument_flags_chain(self):
        from repro.cluster.trace import CAT_CRITICAL
        from repro.obs import analysis

        result = pipeline_result(degree=2)
        path = analysis.critical_path(result)
        events = to_chrome_trace(result, critical=path)
        crit = [e for e in events if e.get("cat") == CAT_CRITICAL
                and e["ph"] in ("X", "i")]
        assert len(crit) == len(path)
        flows = [e for e in events if e.get("name") == "critical_path"]
        assert len(flows) == 2 * (len(path) - 1)
