"""Tests for dynamic capacity-factor semantics (Figure 16)."""

import numpy as np
import pytest

from repro.core.config import expert_capacity
from repro.moe.capacity import (
    CapacityPolicy,
    needed_capacity,
    needed_capacity_factor,
    resolve_capacity,
)


def skewed_idxs(t=16, e=4):
    """Routing where expert 0 receives half the tokens."""
    idxs = np.zeros((1, t), dtype=int)
    idxs[0, t // 2:] = np.arange(t // 2) % (e - 1) + 1
    return idxs


class TestNeededCapacity:
    def test_longest_queue(self):
        idxs = np.array([[0, 0, 0, 1]])
        assert needed_capacity(idxs, 2) == 3

    def test_counts_all_slots(self):
        idxs = np.array([[0, 1], [0, 1]])
        assert needed_capacity(idxs, 2) == 2

    def test_minimum_one(self):
        assert needed_capacity(np.zeros((1, 0), dtype=int), 4) == 1

    def test_factor_inverts_equation_one(self):
        idxs = skewed_idxs(t=16, e=4)
        f = needed_capacity_factor(idxs, 4, tokens=16)
        cap = expert_capacity(1, f, 16, 4)
        assert cap >= needed_capacity(idxs, 4)

    def test_even_routing_needs_factor_one(self):
        t, e = 16, 4
        idxs = (np.arange(t) % e)[None, :]
        assert needed_capacity_factor(idxs, e, t) == pytest.approx(1.0)


class TestCapacityPolicy:
    def test_positive_not_adaptive(self):
        assert not CapacityPolicy(2.0).is_adaptive
        assert CapacityPolicy(2.0).upper_bound is None

    def test_zero_adaptive_unbounded(self):
        policy = CapacityPolicy(0.0)
        assert policy.is_adaptive
        assert policy.upper_bound is None

    def test_negative_adaptive_bounded(self):
        policy = CapacityPolicy(-4.0)
        assert policy.is_adaptive
        assert policy.upper_bound == 4.0


class TestResolveCapacity:
    """The three behaviours of Figure 16 (x = 4, 0, -4)."""

    def test_positive_fixed(self):
        idxs = skewed_idxs()
        cap, f = resolve_capacity(CapacityPolicy(4.0), idxs, 4, 16, 1)
        assert f == 4.0
        assert cap == expert_capacity(1, 4.0, 16, 4)

    def test_zero_adapts_to_lossless_minimum(self):
        idxs = skewed_idxs()
        cap, f = resolve_capacity(CapacityPolicy(0.0), idxs, 4, 16, 1)
        assert cap == needed_capacity(idxs, 4)
        # The implied factor reflects the skew (> 1).
        assert f > 1.0

    def test_negative_caps_the_adaptation(self):
        idxs = skewed_idxs()  # needs f = 2 (8 tokens on expert 0 of 16/4)
        cap_unbounded, f_unbounded = resolve_capacity(
            CapacityPolicy(0.0), idxs, 4, 16, 1)
        cap_bounded, f_bounded = resolve_capacity(
            CapacityPolicy(-1.5), idxs, 4, 16, 1)
        assert f_unbounded > 1.5
        assert f_bounded == 1.5
        assert cap_bounded < cap_unbounded

    def test_negative_bound_not_reached_behaves_like_zero(self):
        t, e = 16, 4
        idxs = (np.arange(t) % e)[None, :]  # perfectly even
        cap0, f0 = resolve_capacity(CapacityPolicy(0.0), idxs, e, t, 1)
        capn, fn = resolve_capacity(CapacityPolicy(-8.0), idxs, e, t, 1)
        assert (cap0, f0) == (capn, fn)

    def test_adaptive_never_drops(self):
        rng = np.random.default_rng(0)
        for trial in range(5):
            idxs = rng.integers(0, 8, size=(2, 64))
            cap, _ = resolve_capacity(CapacityPolicy(0.0), idxs, 8, 64, 2)
            counts = np.bincount(idxs.ravel(), minlength=8)
            assert cap >= counts.max()
