"""Tests for the unit-formatting helpers."""

import pytest

from repro.core.units import GIB, KIB, MIB, fmt_bytes, fmt_rate, fmt_time


class TestConstants:
    def test_binary_units(self):
        assert KIB == 1024
        assert MIB == 1024 ** 2
        assert GIB == 1024 ** 3


class TestFormatting:
    @pytest.mark.parametrize("value,expected", [
        (512, "512 B"),
        (2 * KIB, "2.00 KiB"),
        (3.5 * MIB, "3.50 MiB"),
        (1.25 * GIB, "1.25 GiB"),
        (2048 * GIB, "2.00 TiB"),
    ])
    def test_fmt_bytes(self, value, expected):
        assert fmt_bytes(value) == expected

    @pytest.mark.parametrize("value,expected", [
        (5e-6, "5.0 us"),
        (1.5e-3, "1.50 ms"),
        (2.5, "2.500 s"),
    ])
    def test_fmt_time(self, value, expected):
        assert fmt_time(value) == expected

    def test_fmt_rate_decimal_gb(self):
        assert fmt_rate(25e9) == "25.00 GB/s"

    def test_fmt_bytes_huge_stays_tib(self):
        assert fmt_bytes(5000 * GIB).endswith("TiB")
